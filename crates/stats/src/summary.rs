//! Streaming summaries: Welford mean/variance, min/max, and quantiles of
//! collected samples.  Used by the benchmark harness to report experiment
//! tables without keeping raw observations around.

/// A streaming summary of `f64` observations.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice in one pass.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Summary::new();
        for &v in values {
            s.record(v);
        }
        s
    }

    /// Records one observation (Welford's online update).
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another summary into this one (parallel Welford combination).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a set of samples, by sorting a copy and
/// using the nearest-rank rule.  For small experiment result sets only.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "quantile of an empty sample set");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile fraction must be in [0, 1]"
    );
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_data() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance with n-1 = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_slice(&[3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn merge_matches_single_pass() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = Summary::from_slice(&data);
        let mut left = Summary::from_slice(&data[..317]);
        let right = Summary::from_slice(&data[317..]);
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-8);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::from_slice(&[1.0, 2.0, 3.0]);
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a.count(), before.count());
        assert!((a.mean() - before.mean()).abs() < 1e-15);
        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 3);
    }

    #[test]
    fn quantiles_by_nearest_rank() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 0.5), 3.0);
        assert_eq!(quantile(&data, 1.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn quantile_of_empty_panics() {
        quantile(&[], 0.5);
    }
}
