//! Fixed-width integer histograms.
//!
//! Used by the experiment harness to summarise per-sample costs (random
//! numbers per hypergeometric draw in E2, per-processor volumes in E3/E4)
//! without storing every observation.

/// A histogram over `u64` values with unit-width bins in `[0, capacity)` and
//  an overflow bin for anything larger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with unit bins for values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Histogram {
            bins: vec![0; capacity],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        if (value as usize) < self.bins.len() {
            self.bins[value as usize] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all recorded observations (0 if none).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest observation seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Count in bin `value` (0 if out of range).
    pub fn bin(&self, value: u64) -> u64 {
        self.bins.get(value as usize).copied().unwrap_or(0)
    }

    /// Observations that fell beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The smallest value `q` such that at least `fraction` of the
    /// observations are `≤ q`.  Overflowed observations are treated as
    /// `capacity` (so a quantile inside the overflow region saturates).
    pub fn quantile(&self, fraction: f64) -> u64 {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        if self.count == 0 {
            return 0;
        }
        let target = (fraction * self.count as f64).ceil() as u64;
        let mut acc = 0u64;
        for (value, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return value as u64;
            }
        }
        self.bins.len() as u64
    }

    /// Merges another histogram of identical capacity into this one.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "capacity mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarises() {
        let mut h = Histogram::new(10);
        for v in [1u64, 2, 2, 3, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.bin(2), 2);
        assert_eq!(h.bin(7), 0);
        assert_eq!(h.max(), 9);
        assert!((h.mean() - 17.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn overflow_bin() {
        let mut h = Histogram::new(4);
        h.record(3);
        h.record(4);
        h.record(100);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(100);
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 49);
        assert_eq!(h.quantile(0.99), 98);
        assert_eq!(h.quantile(1.0), 99);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let h = Histogram::new(4);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new(8);
        let mut b = Histogram::new(8);
        a.record(1);
        a.record(2);
        b.record(2);
        b.record(7);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.bin(2), 2);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.max(), 100);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn merge_capacity_mismatch_panics() {
        let mut a = Histogram::new(8);
        let b = Histogram::new(9);
        a.merge(&b);
    }
}
