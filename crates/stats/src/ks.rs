//! Kolmogorov–Smirnov tests.
//!
//! The KS statistic compares empirical distribution functions; the
//! asymptotic p-value uses the Kolmogorov distribution
//! `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2 k² λ²)`.
//!
//! The workspace uses the two-sample test to check that different exact
//! samplers (inversion vs HRUA vs the parallel algorithms) agree in
//! distribution, and the one-sample test against exact hypergeometric CDFs.

/// Result of a Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsOutcome {
    /// The maximum CDF discrepancy `D`.
    pub statistic: f64,
    /// The effective sample size entering the asymptotic p-value.
    pub effective_n: f64,
    /// Asymptotic p-value.
    pub p_value: f64,
}

impl KsOutcome {
    /// Whether the null (same distribution) survives at level `alpha`.
    pub fn is_consistent_at(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Kolmogorov survival function `Q(λ)`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// One-sample KS test of `samples` against a hypothesised CDF.
///
/// `cdf(x)` must return `P(X ≤ x)` under the null.  For discrete
/// distributions the test is conservative (the true p-value is larger), which
/// is fine for the "do not reject uniformity" checks in this workspace.
pub fn ks_one_sample(samples: &[f64], cdf: impl Fn(f64) -> f64) -> KsOutcome {
    assert!(!samples.is_empty(), "KS test needs at least one sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let ecdf_hi = (i + 1) as f64 / n;
        let ecdf_lo = i as f64 / n;
        d = d.max((ecdf_hi - f).abs()).max((f - ecdf_lo).abs());
    }
    let effective_n = n;
    let lambda = (effective_n.sqrt() + 0.12 + 0.11 / effective_n.sqrt()) * d;
    KsOutcome {
        statistic: d,
        effective_n,
        p_value: kolmogorov_q(lambda),
    }
}

/// Two-sample KS test: are `a` and `b` drawn from the same distribution?
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsOutcome {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "KS test needs at least one sample on each side"
    );
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("samples must not contain NaN"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("samples must not contain NaN"));
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let xa = sa[i];
        let xb = sb[j];
        let x = xa.min(xb);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / na;
        let fb = j as f64 / nb;
        d = d.max((fa - fb).abs());
    }
    let effective_n = na * nb / (na + nb);
    let lambda = (effective_n.sqrt() + 0.12 + 0.11 / effective_n.sqrt()) * d;
    KsOutcome {
        statistic: d,
        effective_n,
        p_value: kolmogorov_q(lambda),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_statistic() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let out = ks_two_sample(&a, &a);
        assert_eq!(out.statistic, 0.0);
        assert!((out.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_samples_are_rejected() {
        let a: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| (i + 1000) as f64).collect();
        let out = ks_two_sample(&a, &b);
        assert!((out.statistic - 1.0).abs() < 1e-12);
        assert!(out.p_value < 1e-6);
    }

    #[test]
    fn uniform_grid_against_uniform_cdf() {
        // A perfect uniform grid on [0,1] has tiny discrepancy 1/(2n).
        let n = 1000;
        let samples: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let out = ks_one_sample(&samples, |x| x.clamp(0.0, 1.0));
        assert!(out.statistic <= 0.5 / n as f64 + 1e-12);
        assert!(out.is_consistent_at(0.05));
    }

    #[test]
    fn shifted_uniform_is_rejected() {
        let n = 500;
        let samples: Vec<f64> = (0..n)
            .map(|i| 0.5 + 0.5 * (i as f64 + 0.5) / n as f64)
            .collect();
        let out = ks_one_sample(&samples, |x| x.clamp(0.0, 1.0));
        assert!(out.p_value < 1e-6);
    }

    #[test]
    fn kolmogorov_q_reference_points() {
        // Q(0.83) ≈ 0.497 ; Q(1.36) ≈ 0.049 (the classic 5% critical value).
        assert!((kolmogorov_q(1.36) - 0.049).abs() < 5e-3);
        assert!(kolmogorov_q(0.0) == 1.0);
        assert!(kolmogorov_q(5.0) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_input_panics() {
        ks_one_sample(&[], |x| x);
    }

    #[test]
    fn two_sample_different_sizes() {
        let a: Vec<f64> = (0..64).map(|i| i as f64 / 64.0).collect();
        let b: Vec<f64> = (0..256).map(|i| i as f64 / 256.0).collect();
        let out = ks_two_sample(&a, &b);
        assert!(out.is_consistent_at(0.05));
    }
}
