//! Ranking and unranking of permutations (Lehmer code / factorial number
//! system).
//!
//! The exhaustive uniformity experiments (E5, E7) generate millions of small
//! permutations and must bucket each observed permutation into one of the
//! `n!` possible outcomes.  The Lehmer code provides the bijection: the rank
//! of a permutation is the mixed-radix number whose digit `i` counts how many
//! later entries are smaller than entry `i`.

/// `n!` as `u64`.
///
/// # Panics
/// Panics if `n > 20` (21! overflows `u64`).
pub fn factorial(n: usize) -> u64 {
    assert!(n <= 20, "{n}! does not fit in a u64");
    (1..=n as u64).product()
}

/// Rank of `perm` (a permutation of `0..n`) in lexicographic order, in
/// `0..n!`.
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..perm.len()` or is longer
/// than 20 entries.
pub fn permutation_rank(perm: &[u32]) -> u64 {
    let n = perm.len();
    assert!(n <= 20, "ranking permutations longer than 20 overflows u64");
    // Validate that this is a permutation of 0..n.
    let mut seen = vec![false; n];
    for &x in perm {
        assert!(
            (x as usize) < n && !seen[x as usize],
            "input is not a permutation of 0..{n}"
        );
        seen[x as usize] = true;
    }

    let mut rank = 0u64;
    for i in 0..n {
        // Count later entries smaller than perm[i] (the Lehmer digit).
        let smaller_later = perm[i + 1..].iter().filter(|&&x| x < perm[i]).count() as u64;
        rank += smaller_later * factorial(n - 1 - i);
    }
    rank
}

/// The `rank`-th permutation of `0..n` in lexicographic order.
///
/// # Panics
/// Panics if `rank >= n!` or `n > 20`.
pub fn permutation_unrank(n: usize, mut rank: u64) -> Vec<u32> {
    assert!(
        n <= 20,
        "unranking permutations longer than 20 overflows u64"
    );
    assert!(rank < factorial(n), "rank {rank} out of range for n = {n}");
    let mut available: Vec<u32> = (0..n as u32).collect();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let f = factorial(n - 1 - i);
        let digit = (rank / f) as usize;
        rank %= f;
        out.push(available.remove(digit));
    }
    out
}

/// Number of inversions of a permutation — the sum of its Lehmer digits.
/// Used as an auxiliary statistic in uniformity tests (under uniformity the
/// expected number of inversions is `n(n−1)/4`).
pub fn inversions(perm: &[u32]) -> u64 {
    let mut count = 0u64;
    for i in 0..perm.len() {
        for j in i + 1..perm.len() {
            if perm[j] < perm[i] {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_values() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(1), 1);
        assert_eq!(factorial(5), 120);
        assert_eq!(factorial(10), 3_628_800);
        assert_eq!(factorial(20), 2_432_902_008_176_640_000);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn factorial_21_panics() {
        factorial(21);
    }

    #[test]
    fn identity_has_rank_zero() {
        let id: Vec<u32> = (0..8).collect();
        assert_eq!(permutation_rank(&id), 0);
    }

    #[test]
    fn reverse_has_maximum_rank() {
        let rev: Vec<u32> = (0..8).rev().collect();
        assert_eq!(permutation_rank(&rev), factorial(8) - 1);
    }

    #[test]
    fn rank_unrank_roundtrip_exhaustive_n4() {
        for r in 0..factorial(4) {
            let p = permutation_unrank(4, r);
            assert_eq!(permutation_rank(&p), r);
        }
    }

    #[test]
    fn unrank_is_lexicographic() {
        let mut prev = permutation_unrank(5, 0);
        for r in 1..factorial(5) {
            let cur = permutation_unrank(5, r);
            assert!(cur > prev, "rank {r} not lexicographically after {}", r - 1);
            prev = cur;
        }
    }

    #[test]
    fn known_small_example() {
        // Permutations of {0,1,2} in lexicographic order.
        let expected = [
            vec![0u32, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ];
        for (r, e) in expected.iter().enumerate() {
            assert_eq!(&permutation_unrank(3, r as u64), e);
            assert_eq!(permutation_rank(e), r as u64);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn non_permutation_rejected() {
        permutation_rank(&[0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unrank_out_of_range_rejected() {
        permutation_unrank(3, 6);
    }

    #[test]
    fn inversions_of_known_permutations() {
        assert_eq!(inversions(&[0, 1, 2, 3]), 0);
        assert_eq!(inversions(&[3, 2, 1, 0]), 6);
        assert_eq!(inversions(&[1, 0, 3, 2]), 2);
        // Empty and singleton.
        assert_eq!(inversions(&[]), 0);
        assert_eq!(inversions(&[0]), 0);
    }
}
