//! The pluggable transport layer: how envelopes move between virtual
//! processors.
//!
//! Everything above this module — [`crate::Communicator`], the executors,
//! the permutation engine in `cgp-core` — talks to the fabric through two
//! small contracts:
//!
//! * [`TransportEndpoint`] — one virtual processor's wire on one typed
//!   plane: send an [`Envelope`] to a peer, receive the next envelope with
//!   a timeout (so blocked receives can poll the machine's abort flag), and
//!   [`drain`](TransportEndpoint::drain) everything in flight (pool
//!   recovery).
//! * [`Transport`] — a factory that opens the full two-plane fabric of one
//!   machine: `p` endpoints for the `Vec<T>` **data plane** and `p`
//!   endpoints for the `Vec<u64>` **word plane** (matrix sampling).
//!
//! Two transports ship:
//!
//! * [`ThreadTransport`] ([`TransportKind::Threads`], the default) — the
//!   in-process channel fabric.  Payloads move by value and never touch a
//!   wire; this is the zero-overhead fast path and its permutations are
//!   byte-identical to the pre-transport engine for the same seed.
//! * [`process::ProcessTransport`] ([`TransportKind::Process`]) — each
//!   virtual processor's mailbox lives in its own **child process**,
//!   connected over Unix domain sockets with length-prefixed frames;
//!   payloads are serialized through the [`wire::Wire`] codecs.  See the
//!   [`process`] module docs for the framing format and the
//!   `process::init()` contract.
//!
//! # The drain / fence contracts
//!
//! Pool recovery and generation fencing used to lean on accidents of
//! channel semantics; they are trait contracts now:
//!
//! * **Drain** — after [`TransportEndpoint::drain`] returns, no envelope
//!   sent to this endpoint *before* the call will ever be received from it.
//!   Envelopes sent after the drain are unaffected.  Only sound while all
//!   peers are parked (the pool's recovery round guarantees that).
//! * **Fence** — an endpoint delivers [`Envelope::generation`] unmodified;
//!   it never interprets it.  Dropping stale generations is the
//!   [`crate::Communicator`]'s job, which works on *any* conforming
//!   transport precisely because the stamp survives the wire.
//!
//! Both contracts (and the rest of the endpoint semantics) are exercised by
//! the [`conformance`] suite, which any third transport can — and should —
//! instantiate.
//!
//! # Example: driving endpoints directly
//!
//! ```
//! use std::time::Duration;
//! use cgp_cgm::transport::{Envelope, ThreadTransport, Transport, TransportRecv};
//!
//! let wires = ThreadTransport.open(2).unwrap();
//! let [mut a, mut b]: [_; 2] = wires.data.try_into().ok().unwrap();
//!
//! // a → b, then drain b: the envelope must be gone …
//! a.send(1, Envelope { from: 0, tag: 7, generation: 0, payload: vec![1u64, 2] })
//!     .unwrap();
//! b.drain();
//! assert!(matches!(
//!     b.recv_timeout(Duration::from_millis(10)),
//!     TransportRecv::TimedOut
//! ));
//!
//! // … while an envelope sent after the drain arrives intact.
//! a.send(1, Envelope { from: 0, tag: 8, generation: 0, payload: vec![3u64] })
//!     .unwrap();
//! match b.recv_timeout(Duration::from_secs(5)) {
//!     TransportRecv::Envelope(env) => {
//!         assert_eq!((env.from, env.tag, env.payload), (0, 8, vec![3]));
//!     }
//!     other => panic!("expected an envelope, got {other:?}"),
//! }
//! ```

pub mod conformance;
pub mod process;
pub mod wire;

use std::time::Duration;

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::error::CgmError;

/// Which built-in transport a machine's fabric is opened on.
///
/// Part of [`crate::CgmConfig`], so every executor ([`crate::CgmMachine`],
/// [`crate::ResidentCgm`]) and every layer built on them (sessions, the
/// service fleet) selects its substrate with one field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process channel fabric (the default): payloads move by value,
    /// nothing is serialized.  Permutations are byte-identical to the
    /// process transport for the same seed — the substrate never touches
    /// the engine's random streams.
    #[default]
    Threads,
    /// Per-processor mailbox child processes over Unix domain sockets with
    /// length-prefixed frames.  Requires the payload type to be
    /// [`wire::Wire`]-codable (registered via [`wire::register_wire`] for
    /// custom types) and the embedding binary to call
    /// [`process::init`] at the start of `main`.
    Process,
}

impl TransportKind {
    /// Stable lowercase name (snapshot files, logs).
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Threads => "threads",
            TransportKind::Process => "process",
        }
    }

    /// Opens the two-plane fabric of the built-in transport this kind
    /// names.
    pub(crate) fn open_fabric<T: Send + 'static>(
        self,
        procs: usize,
    ) -> Result<FabricWires<T>, CgmError> {
        match self {
            TransportKind::Threads => ThreadTransport.open(procs),
            TransportKind::Process => process::ProcessTransport.open(procs),
        }
    }
}

/// A message in flight between two virtual processors: the unit every
/// [`TransportEndpoint`] moves.
///
/// The `generation` stamp is the **fence** of the resident pool: outgoing
/// envelopes carry the sending job's generation, and receives drop
/// envelopes from earlier jobs (sent but legally never received there)
/// instead of delivering them into the wrong job.  Transports must carry
/// the stamp unmodified; they never interpret it.
#[derive(Debug)]
pub struct Envelope<T> {
    /// Sending virtual processor.
    pub from: usize,
    /// Message tag (matched by [`crate::Communicator::recv`]).
    pub tag: u64,
    /// Job generation of the sender; always `0` on the one-shot machine,
    /// whose fabric lives for exactly one job.
    pub generation: u64,
    /// The payload, moved (threads) or serialized (process) to the peer.
    pub payload: Vec<T>,
}

/// Outcome of a timed receive on a [`TransportEndpoint`].
#[derive(Debug)]
pub enum TransportRecv<T> {
    /// The next envelope addressed to this endpoint.
    Envelope(Envelope<T>),
    /// Nothing arrived within the timeout; the caller re-checks the abort
    /// flag and retries.
    TimedOut,
    /// The medium is gone (every peer hung up / a mailbox process died);
    /// nothing will ever arrive again.
    Closed,
}

/// The peer's endpoint no longer exists; the envelope could not be
/// delivered.  [`crate::Communicator::send`] turns this into a panic naming
/// the peer, which the machine's abort machinery contains like any other
/// processor failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerGone;

/// One virtual processor's wire on one typed plane.
///
/// Contracts every implementation must honour (checked by
/// [`conformance::check`]):
///
/// * **Per-pair FIFO** — envelopes from a fixed sender to a fixed receiver
///   arrive in sending order (the mailbox re-ordering in
///   [`crate::Communicator`] relies on it).
/// * **No send/receive deadlock** — `send` may block briefly but must not
///   wait for the receiver to call `recv_timeout` (all-to-all exchanges
///   send everything before receiving anything); buffering is the
///   transport's job.
/// * **Drain** — see the [module docs](self) for the drain and
///   generation-fence contracts.
pub trait TransportEndpoint<T>: Send {
    /// Delivers `envelope` to peer `to` (never called with `to` equal to
    /// this endpoint's own processor — self-sends stay local in the
    /// [`crate::Communicator`]).
    fn send(&mut self, to: usize, envelope: Envelope<T>) -> Result<(), PeerGone>;

    /// Receives the next envelope addressed to this endpoint, waiting at
    /// most `timeout`.
    fn recv_timeout(&mut self, timeout: Duration) -> TransportRecv<T>;

    /// Discards everything in flight towards this endpoint: after this
    /// returns, no envelope sent before the call will ever be received.
    /// Only sound while all peers are parked (pool recovery).
    fn drain(&mut self);

    /// Cumulative bytes this endpoint has framed onto an inter-process
    /// medium (serialized payloads + headers).  `0` on the thread
    /// transport, where payloads move by value — which is exactly the
    /// "zero wire overhead" claim made observable.
    fn wire_bytes(&self) -> u64 {
        0
    }
}

/// The opened fabric of one machine: `p` endpoints per plane, indexed by
/// processor id.
pub struct FabricWires<T> {
    /// Data-plane endpoints (`Vec<T>` payloads).
    pub data: Vec<Box<dyn TransportEndpoint<T>>>,
    /// Word-plane endpoints (`Vec<u64>` payloads, matrix sampling).
    pub words: Vec<Box<dyn TransportEndpoint<u64>>>,
}

/// A factory for two-plane machine fabrics — the pluggable part.
///
/// Implemented by [`ThreadTransport`] and
/// [`process::ProcessTransport`]; a third transport (e.g. TCP between
/// hosts) implements this and inherits the whole executor/session/service
/// stack plus the [`conformance`] battery.
pub trait Transport<T: Send + 'static>: Send + Sync {
    /// Opens the endpoints of both planes for a machine with `procs`
    /// virtual processors.
    fn open(&self, procs: usize) -> Result<FabricWires<T>, CgmError>;

    /// Stable lowercase name (diagnostics).
    fn name(&self) -> &'static str;
}

/// The in-process channel transport: one unbounded channel per processor
/// and plane, payloads moved by value.  The default, and the baseline every
/// other transport's overhead is measured against (experiment E13).
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadTransport;

impl<T: Send + 'static> Transport<T> for ThreadTransport {
    fn open(&self, procs: usize) -> Result<FabricWires<T>, CgmError> {
        Ok(FabricWires {
            data: open_channel_plane(procs),
            words: open_channel_plane(procs),
        })
    }

    fn name(&self) -> &'static str {
        TransportKind::Threads.name()
    }
}

/// Builds one channel plane: every endpoint holds a sender to every *peer*
/// (its own slot is empty — self-sends never reach the transport) and its
/// own receiver.  Not holding a self-sender is what lets the channel
/// disconnect, and [`TransportRecv::Closed`] fire, once every peer is gone.
fn open_channel_plane<T: Send + 'static>(procs: usize) -> Vec<Box<dyn TransportEndpoint<T>>> {
    let mut senders = Vec::with_capacity(procs);
    let mut receivers = Vec::with_capacity(procs);
    for _ in 0..procs {
        let (tx, rx) = unbounded::<Envelope<T>>();
        senders.push(tx);
        receivers.push(rx);
    }
    receivers
        .into_iter()
        .enumerate()
        .map(|(id, receiver)| {
            Box::new(ChannelEndpoint {
                senders: senders
                    .iter()
                    .enumerate()
                    .map(|(to, tx)| (to != id).then(|| tx.clone()))
                    .collect(),
                receiver,
            }) as Box<dyn TransportEndpoint<T>>
        })
        .collect()
}

struct ChannelEndpoint<T> {
    senders: Vec<Option<Sender<Envelope<T>>>>,
    receiver: Receiver<Envelope<T>>,
}

impl<T: Send> TransportEndpoint<T> for ChannelEndpoint<T> {
    fn send(&mut self, to: usize, envelope: Envelope<T>) -> Result<(), PeerGone> {
        self.senders[to]
            .as_ref()
            .expect("self-sends never reach the transport")
            .send(envelope)
            .map_err(|_| PeerGone)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> TransportRecv<T> {
        match self.receiver.recv_timeout(timeout) {
            Ok(env) => TransportRecv::Envelope(env),
            Err(RecvTimeoutError::Timeout) => TransportRecv::TimedOut,
            Err(RecvTimeoutError::Disconnected) => TransportRecv::Closed,
        }
    }

    fn drain(&mut self) {
        while self.receiver.try_recv().is_ok() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(TransportKind::Threads.name(), "threads");
        assert_eq!(TransportKind::Process.name(), "process");
        assert_eq!(TransportKind::default(), TransportKind::Threads);
    }

    #[test]
    fn thread_endpoints_report_zero_wire_bytes() {
        let wires: FabricWires<u64> = ThreadTransport.open(2).unwrap();
        assert_eq!(wires.data.len(), 2);
        assert_eq!(wires.words.len(), 2);
        assert_eq!(wires.data[0].wire_bytes(), 0);
    }

    #[test]
    fn closed_plane_reports_closed() {
        let mut wires: FabricWires<u64> = ThreadTransport.open(2).unwrap();
        let mut keep = wires.data.remove(1);
        drop(wires); // endpoint 0 (and its senders) gone
        assert!(matches!(
            keep.recv_timeout(Duration::from_millis(5)),
            TransportRecv::Closed
        ));
    }
}
