//! The multi-process transport: every virtual processor's **mailbox** lives
//! in its own child process.
//!
//! # Topology
//!
//! Job closures (`Fn(&mut ProcCtx<T>)`) cannot cross an address-space
//! boundary, so compute stays on the parent's worker threads.  What moves
//! out of process is the part the paper's cluster runs distribute anyway:
//! each processor's mailbox — the buffering, ordering and fence-carrying
//! medium.  One child process per virtual processor acts as a
//! store-and-forward FIFO daemon:
//!
//! ```text
//!   worker i ──send──► child j's socket ──► child j queue ──► parent demux j ──► endpoint j
//! ```
//!
//! Every envelope addressed to processor `j` is framed onto child `j`'s
//! Unix domain socket, round-trips through the child's in-memory queue, and
//! is decoded by a parent-side demux thread into processor `j`'s typed
//! inbox.  The child buffers unboundedly (a reader thread always drains the
//! socket), so all-to-all exchanges never deadlock on a full pipe — the
//! no-deadlock contract of [`super::TransportEndpoint`].
//!
//! # Framing format
//!
//! Little-endian throughout.  Each frame is `len: u64` (byte length of the
//! body) followed by the body, whose first byte is the kind:
//!
//! | kind | body layout                                                    |
//! |------|----------------------------------------------------------------|
//! | 0    | hello: `proc: u32` — child announces which mailbox it is        |
//! | 1    | envelope: `plane: u8, from: u32, tag: u64, generation: u64, payload bytes` |
//! | 2    | flush: `plane: u8, marker: u64` — drain round-trip marker       |
//!
//! Children forward frames **verbatim** and never parse payloads; the
//! generation stamp survives the wire untouched, which is the fence
//! contract of the [transport module](super).  Payload bytes are produced
//! and consumed by the [`super::wire`] codecs.
//!
//! # Drain
//!
//! [`drain`](super::TransportEndpoint::drain) writes a flush frame with a
//! fresh marker to the endpoint's *own* child and waits for the echo.  The
//! stream into each child is FIFO (all writers share one `Mutex`-guarded
//! socket) and the child forwards FIFO, so once the marker comes back every
//! envelope sent before the drain has already been demuxed into the local
//! inbox — discarding the inbox then completes the contract.
//!
//! # The `init()` contract
//!
//! Children are spawned by **re-executing the current binary** with two
//! environment variables set.  Any binary that opens a
//! [`ProcessTransport`] fabric must therefore call [`init`] at the very
//! start of `main`, before argument parsing:
//!
//! ```no_run
//! // First line of main():
//! cgp_cgm::transport::process::init(); // never returns in mailbox children
//! // ... the real program ...
//! ```
//!
//! Under `cargo test` this requires a `harness = false` integration test
//! (the default test harness owns `main`).  If `init` was not called, the
//! children run the embedding program instead of the mailbox loop and
//! never connect; [`ProcessTransport::open`] then fails with an error
//! naming this contract rather than hanging.

use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::diag;
use crate::error::CgmError;

use super::wire::{wire_fns, WireFns};
use super::{
    Envelope, FabricWires, PeerGone, Transport, TransportEndpoint, TransportKind, TransportRecv,
};

/// Environment variable carrying the mailbox socket path to a child.
pub const ENV_SOCKET: &str = "CGP_CGM_MAILBOX";
/// Environment variable carrying the child's processor id.
pub const ENV_PROC: &str = "CGP_CGM_MAILBOX_PROC";

const KIND_HELLO: u8 = 0;
const KIND_ENVELOPE: u8 = 1;
const KIND_FLUSH: u8 = 2;

const PLANE_DATA: u8 = 0;
const PLANE_WORDS: u8 = 1;

/// How long [`ProcessTransport::open`] waits for all mailbox children to
/// connect before concluding the embedding binary never called [`init`].
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a drain waits for its flush marker to round-trip before
/// falling back to discarding only the locally buffered envelopes (the
/// child is gone at that point, so nothing else can arrive anyway).
const FLUSH_TIMEOUT: Duration = Duration::from_secs(5);

/// Re-exec hook: must be the first call in `main` of any binary that opens
/// a [`ProcessTransport`] fabric.
///
/// In the parent this returns immediately.  In a spawned mailbox child
/// (recognised by the [`ENV_SOCKET`]/[`ENV_PROC`] environment variables)
/// it runs the store-and-forward mailbox loop and **exits the process**
/// when the parent hangs up — it never returns there.
pub fn init() {
    let (Ok(path), Ok(proc_id)) = (std::env::var(ENV_SOCKET), std::env::var(ENV_PROC)) else {
        return;
    };
    let proc_id: u32 = proc_id
        .parse()
        .unwrap_or_else(|_| panic!("{ENV_PROC} must be a processor id, got {proc_id:?}"));
    mailbox_main(&path, proc_id);
}

/// The child side: connect, say hello, then forward every frame verbatim
/// in FIFO order through an unbounded in-memory queue.  The queue decouples
/// socket reads from socket writes, so the parent can always complete a
/// send even while no one is receiving — the buffering that makes
/// all-to-all exchanges deadlock-free.
fn mailbox_main(path: &str, proc_id: u32) -> ! {
    let mut stream = UnixStream::connect(path)
        .unwrap_or_else(|e| panic!("mailbox {proc_id}: cannot connect to {path}: {e}"));

    let mut hello = vec![KIND_HELLO];
    hello.extend_from_slice(&proc_id.to_le_bytes());
    write_frame(&mut stream, &hello).expect("mailbox: hello failed");

    let mut read_half = stream.try_clone().expect("mailbox: clone stream");
    let (queue_tx, queue_rx) = mpsc::channel::<Vec<u8>>();
    std::thread::spawn(move || {
        while let Ok(Some(body)) = read_frame(&mut read_half) {
            if queue_tx.send(body).is_err() {
                break;
            }
        }
        // EOF or error: dropping queue_tx lets the writer below finish
        // forwarding whatever is already queued, then exit.
    });

    while let Ok(body) = queue_rx.recv() {
        if write_frame(&mut stream, &body).is_err() {
            break; // parent gone; nothing left to forward to
        }
    }
    std::process::exit(0);
}

fn write_frame(stream: &mut UnixStream, body: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(body.len() as u64).to_le_bytes())?;
    stream.write_all(body)
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
fn read_frame(stream: &mut UnixStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 8];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let mut body = vec![0u8; u64::from_le_bytes(len) as usize];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

fn encode_envelope_body<T>(
    plane: u8,
    envelope: &Envelope<T>,
    encode: fn(&[T], &mut Vec<u8>),
) -> Vec<u8> {
    let mut body = Vec::with_capacity(22 + envelope.payload.len() * 8);
    body.push(KIND_ENVELOPE);
    body.push(plane);
    body.extend_from_slice(&(envelope.from as u32).to_le_bytes());
    body.extend_from_slice(&envelope.tag.to_le_bytes());
    body.extend_from_slice(&envelope.generation.to_le_bytes());
    encode(&envelope.payload, &mut body);
    body
}

struct EnvelopeHeader {
    plane: u8,
    from: usize,
    tag: u64,
    generation: u64,
}

fn decode_envelope_header(body: &[u8]) -> Option<(EnvelopeHeader, &[u8])> {
    if body.len() < 22 || body[0] != KIND_ENVELOPE {
        return None;
    }
    Some((
        EnvelopeHeader {
            plane: body[1],
            from: u32::from_le_bytes(body[2..6].try_into().ok()?) as usize,
            tag: u64::from_le_bytes(body[6..14].try_into().ok()?),
            generation: u64::from_le_bytes(body[14..22].try_into().ok()?),
        },
        &body[22..],
    ))
}

fn encode_flush_body(plane: u8, marker: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(10);
    body.push(KIND_FLUSH);
    body.push(plane);
    body.extend_from_slice(&marker.to_le_bytes());
    body
}

fn decode_flush_body(body: &[u8]) -> Option<(u8, u64)> {
    if body.len() != 10 || body[0] != KIND_FLUSH {
        return None;
    }
    Some((body[1], u64::from_le_bytes(body[2..10].try_into().ok()?)))
}

/// Kills the mailbox children and removes the socket file once the last
/// endpoint of the fabric is dropped.
struct ChildGuard {
    children: Mutex<Vec<Child>>,
    socket_path: PathBuf,
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let mut children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        for child in children.iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        let _ = std::fs::remove_file(&self.socket_path);
    }
}

/// The per-processor-mailbox-process transport ([`TransportKind::Process`]).
///
/// See the [module docs](self) for topology, framing and the [`init`]
/// contract.  Requires a [`super::wire::Wire`] codec for the payload type
/// (pre-registered for primitives, [`super::wire::register_wire`] for
/// custom types); opening a fabric for an unregistered type fails with
/// [`CgmError::TransportUnsupportedPayload`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ProcessTransport;

impl<T: Send + 'static> Transport<T> for ProcessTransport {
    fn open(&self, procs: usize) -> Result<FabricWires<T>, CgmError> {
        let data_fns = wire_fns::<T>().ok_or(CgmError::TransportUnsupportedPayload {
            type_name: std::any::type_name::<T>(),
        })?;
        let word_fns = wire_fns::<u64>().expect("u64 codec is built in");

        let setup = |message: String| CgmError::TransportSetupFailed { message };

        let socket_path = fresh_socket_path();
        let listener = UnixListener::bind(&socket_path)
            .map_err(|e| setup(format!("cannot bind {}: {e}", socket_path.display())))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| setup(format!("cannot poll listener: {e}")))?;

        let exe = std::env::current_exe()
            .map_err(|e| setup(format!("cannot locate current executable: {e}")))?;
        let mut children = Vec::with_capacity(procs);
        for proc_id in 0..procs {
            let child = Command::new(&exe)
                .env(ENV_SOCKET, &socket_path)
                .env(ENV_PROC, proc_id.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| setup(format!("cannot spawn mailbox process {proc_id}: {e}")))?;
            diag::note_process_spawn();
            children.push(child);
        }
        let guard = Arc::new(ChildGuard {
            children: Mutex::new(children),
            socket_path: socket_path.clone(),
        });

        // Accept one connection per child, with a deadline: if the embedding
        // binary never called init(), the children re-ran the program instead
        // of the mailbox loop and will never connect.
        let deadline = Instant::now() + CONNECT_TIMEOUT;
        let mut streams: Vec<Option<UnixStream>> = (0..procs).map(|_| None).collect();
        let mut connected = 0;
        while connected < procs {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| setup(format!("cannot configure mailbox stream: {e}")))?;
                    let mut stream = stream;
                    let hello = read_frame(&mut stream)
                        .map_err(|e| setup(format!("mailbox hello failed: {e}")))?
                        .ok_or_else(|| setup("mailbox hung up before hello".into()))?;
                    if hello.len() != 5 || hello[0] != KIND_HELLO {
                        return Err(setup("malformed mailbox hello frame".into()));
                    }
                    let proc_id =
                        u32::from_le_bytes(hello[1..5].try_into().expect("4 bytes")) as usize;
                    if proc_id >= procs || streams[proc_id].is_some() {
                        return Err(setup(format!(
                            "unexpected mailbox hello for processor {proc_id}"
                        )));
                    }
                    streams[proc_id] = Some(stream);
                    connected += 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(setup(format!(
                            "{connected}/{procs} mailbox processes connected within \
                             {CONNECT_TIMEOUT:?} — the embedding binary must call \
                             cgp_cgm::transport::process::init() at the start of main \
                             (use a `harness = false` test for `cargo test`)"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(setup(format!("accept failed: {e}"))),
            }
        }

        // Per-processor demux thread: decode echoed frames into the typed
        // per-plane inboxes and flush channels of that processor's endpoints.
        let mut ups = Vec::with_capacity(procs);
        let mut data_endpoints = Vec::with_capacity(procs);
        let mut word_endpoints = Vec::with_capacity(procs);
        let mut inbox_parts = Vec::with_capacity(procs);
        for stream in streams.into_iter().map(|s| s.expect("all connected")) {
            let mut read_half = stream
                .try_clone()
                .map_err(|e| setup(format!("cannot clone mailbox stream: {e}")))?;
            let (data_tx, data_rx) = mpsc::channel::<Envelope<T>>();
            let (word_tx, word_rx) = mpsc::channel::<Envelope<u64>>();
            let (data_flush_tx, data_flush_rx) = mpsc::channel::<u64>();
            let (word_flush_tx, word_flush_rx) = mpsc::channel::<u64>();
            std::thread::spawn(move || {
                demux_loop(
                    &mut read_half,
                    data_fns,
                    word_fns,
                    data_tx,
                    word_tx,
                    data_flush_tx,
                    word_flush_tx,
                )
            });
            ups.push(Mutex::new(stream));
            inbox_parts.push((data_rx, data_flush_rx, word_rx, word_flush_rx));
        }
        let ups = Arc::new(ups);
        for (id, (data_rx, data_flush_rx, word_rx, word_flush_rx)) in
            inbox_parts.into_iter().enumerate()
        {
            data_endpoints.push(Box::new(ProcessEndpoint {
                id,
                plane: PLANE_DATA,
                ups: Arc::clone(&ups),
                inbox: data_rx,
                flush_rx: data_flush_rx,
                encode: data_fns.encode,
                wire_bytes: 0,
                next_marker: 0,
                _guard: Arc::clone(&guard),
            }) as Box<dyn TransportEndpoint<T>>);
            word_endpoints.push(Box::new(ProcessEndpoint {
                id,
                plane: PLANE_WORDS,
                ups: Arc::clone(&ups),
                inbox: word_rx,
                flush_rx: word_flush_rx,
                encode: word_fns.encode,
                wire_bytes: 0,
                next_marker: 0,
                _guard: Arc::clone(&guard),
            }) as Box<dyn TransportEndpoint<u64>>);
        }
        Ok(FabricWires {
            data: data_endpoints,
            words: word_endpoints,
        })
    }

    fn name(&self) -> &'static str {
        TransportKind::Process.name()
    }
}

fn fresh_socket_path() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cgp-cgm-{}-{n}.sock", std::process::id()))
}

/// Parent-side reader of one mailbox's echo stream: decodes envelope
/// frames into the per-plane inboxes and flush markers into the per-plane
/// flush channels.  Exits (dropping the inbox senders, which surfaces
/// [`TransportRecv::Closed`]) when the child hangs up or a frame fails to
/// decode.
fn demux_loop<T>(
    stream: &mut UnixStream,
    data_fns: WireFns<T>,
    word_fns: WireFns<u64>,
    data_tx: mpsc::Sender<Envelope<T>>,
    word_tx: mpsc::Sender<Envelope<u64>>,
    data_flush_tx: mpsc::Sender<u64>,
    word_flush_tx: mpsc::Sender<u64>,
) {
    while let Ok(Some(body)) = read_frame(stream) {
        match body.first() {
            Some(&KIND_ENVELOPE) => {
                let Some((header, payload)) = decode_envelope_header(&body) else {
                    eprintln!("cgp-cgm process transport: malformed envelope frame");
                    return;
                };
                let delivered = match header.plane {
                    PLANE_DATA => match (data_fns.decode)(payload) {
                        Ok(payload) => data_tx
                            .send(Envelope {
                                from: header.from,
                                tag: header.tag,
                                generation: header.generation,
                                payload,
                            })
                            .is_ok(),
                        Err(e) => {
                            eprintln!("cgp-cgm process transport: {e}");
                            return;
                        }
                    },
                    PLANE_WORDS => match (word_fns.decode)(payload) {
                        Ok(payload) => word_tx
                            .send(Envelope {
                                from: header.from,
                                tag: header.tag,
                                generation: header.generation,
                                payload,
                            })
                            .is_ok(),
                        Err(e) => {
                            eprintln!("cgp-cgm process transport: {e}");
                            return;
                        }
                    },
                    other => {
                        eprintln!("cgp-cgm process transport: unknown plane {other}");
                        return;
                    }
                };
                if !delivered {
                    return; // endpoint dropped; nothing to demux for
                }
            }
            Some(&KIND_FLUSH) => {
                let Some((plane, marker)) = decode_flush_body(&body) else {
                    eprintln!("cgp-cgm process transport: malformed flush frame");
                    return;
                };
                let delivered = match plane {
                    PLANE_DATA => data_flush_tx.send(marker).is_ok(),
                    PLANE_WORDS => word_flush_tx.send(marker).is_ok(),
                    other => {
                        eprintln!("cgp-cgm process transport: unknown plane {other}");
                        return;
                    }
                };
                if !delivered {
                    return;
                }
            }
            _ => {
                eprintln!("cgp-cgm process transport: unknown frame kind");
                return;
            }
        }
    }
}

struct ProcessEndpoint<T> {
    id: usize,
    plane: u8,
    /// The write halves of every mailbox's socket, shared by all endpoints
    /// of the fabric; sending to processor `j` locks stream `j`.
    ups: Arc<Vec<Mutex<UnixStream>>>,
    inbox: mpsc::Receiver<Envelope<T>>,
    flush_rx: mpsc::Receiver<u64>,
    encode: fn(&[T], &mut Vec<u8>),
    wire_bytes: u64,
    next_marker: u64,
    _guard: Arc<ChildGuard>,
}

impl<T: Send> TransportEndpoint<T> for ProcessEndpoint<T> {
    fn send(&mut self, to: usize, envelope: Envelope<T>) -> Result<(), PeerGone> {
        let body = encode_envelope_body(self.plane, &envelope, self.encode);
        self.wire_bytes += 8 + body.len() as u64;
        let mut stream = self.ups[to].lock().unwrap_or_else(|e| e.into_inner());
        write_frame(&mut stream, &body).map_err(|_| PeerGone)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> TransportRecv<T> {
        match self.inbox.recv_timeout(timeout) {
            Ok(env) => TransportRecv::Envelope(env),
            Err(mpsc::RecvTimeoutError::Timeout) => TransportRecv::TimedOut,
            Err(mpsc::RecvTimeoutError::Disconnected) => TransportRecv::Closed,
        }
    }

    fn drain(&mut self) {
        // Round-trip a marker through our own mailbox: the socket into the
        // child and the child's forwarding are both FIFO, so when the echo
        // arrives every envelope sent before this call is already in the
        // local inbox — then discard the inbox.
        self.next_marker += 1;
        let marker = self.next_marker;
        let body = encode_flush_body(self.plane, marker);
        self.wire_bytes += 8 + body.len() as u64;
        let sent = {
            let mut stream = self.ups[self.id].lock().unwrap_or_else(|e| e.into_inner());
            write_frame(&mut stream, &body).is_ok()
        };
        if sent {
            let deadline = Instant::now() + FLUSH_TIMEOUT;
            loop {
                let left = deadline.saturating_duration_since(Instant::now());
                match self.flush_rx.recv_timeout(left) {
                    Ok(echo) if echo >= marker => break,
                    Ok(_) => continue, // an older drain's marker
                    Err(_) => break,   // mailbox gone; nothing more can arrive
                }
            }
        }
        while self.inbox.try_recv().is_ok() {}
    }

    fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_body_round_trips() {
        let env = Envelope {
            from: 3,
            tag: 0xFEED,
            generation: 42,
            payload: vec![10u64, 20, 30],
        };
        let fns = wire_fns::<u64>().unwrap();
        let body = encode_envelope_body(PLANE_WORDS, &env, fns.encode);
        let (header, payload) = decode_envelope_header(&body).unwrap();
        assert_eq!(header.plane, PLANE_WORDS);
        assert_eq!(header.from, 3);
        assert_eq!(header.tag, 0xFEED);
        assert_eq!(header.generation, 42);
        assert_eq!((fns.decode)(payload).unwrap(), vec![10, 20, 30]);
    }

    #[test]
    fn flush_body_round_trips() {
        let body = encode_flush_body(PLANE_DATA, 9);
        assert_eq!(decode_flush_body(&body), Some((PLANE_DATA, 9)));
        assert_eq!(decode_flush_body(&body[..5]), None);
    }

    #[test]
    fn unregistered_payload_types_fail_fast() {
        struct Opaque(#[allow(dead_code)] std::sync::mpsc::Sender<()>);
        let Err(err) = <ProcessTransport as Transport<Opaque>>::open(&ProcessTransport, 2) else {
            panic!("an unwired payload type must not open a fabric");
        };
        assert!(matches!(err, CgmError::TransportUnsupportedPayload { .. }));
    }

    #[test]
    fn socket_paths_are_unique() {
        assert_ne!(fresh_socket_path(), fresh_socket_path());
    }
}
