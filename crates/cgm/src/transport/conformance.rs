//! The transport conformance battery: one set of contract checks, run
//! against every [`Transport`] implementation.
//!
//! The executor stack ([`crate::Communicator`] mailbox re-ordering,
//! [`crate::ResidentCgm`] generation fencing and recovery, the abort
//! machinery) is correct **given** the endpoint contracts spelled out on
//! [`TransportEndpoint`] and in the [transport module docs](super).  This
//! module turns those contracts into executable checks so a third
//! transport gets the same coverage for free: implement [`Transport`],
//! call [`check`] from a test, done.
//!
//! The battery covers, in order:
//!
//! 1. delivery on **both** planes with intact headers (from / tag /
//!    generation — the fence stamp must survive the wire),
//! 2. per-pair FIFO ordering,
//! 3. timed receives actually timing out (the primitive the abort poll
//!    loop is built on),
//! 4. the drain contract (pre-drain envelopes gone, post-drain envelopes
//!    unaffected, both planes),
//! 5. stale-generation envelopes of a *clean* earlier job being dropped,
//! 6. an abort waking receivers parked in a blocked receive,
//! 7. pool recovery draining the in-flight envelopes of a *panicked* job.
//!
//! Checks 5–7 drive a full [`crate::ResidentCgm`] over the candidate
//! transport — they verify the machine-level guarantees, not just the
//! endpoint ones.  Note for process-like transports: the embedding binary
//! must have performed its re-exec hook (e.g.
//! [`super::process::init`]) before [`check`] runs.

use std::time::{Duration, Instant};

use crate::error::CgmError;
use crate::machine::{CgmConfig, ProcCtx};
use crate::pool::ResidentCgm;

use super::{Envelope, Transport, TransportEndpoint, TransportRecv};

/// Generous receive timeout for envelopes that must arrive: large enough
/// for a freshly spawned process fabric, far below any CI limit.
const ARRIVAL: Duration = Duration::from_secs(10);

/// Runs the full battery against `transport`.  Panics (with a message
/// naming the violated contract) on the first failure.
pub fn check(transport: &dyn Transport<u64>) {
    delivery_on_both_planes(transport);
    per_pair_fifo(transport);
    timed_receive_times_out(transport);
    drain_discards_prior_envelopes(transport);
    stale_generation_envelopes_are_dropped(transport);
    abort_wakes_parked_receivers(transport);
    recovery_drains_panicked_job_envelopes(transport);
}

fn expect_envelope<T>(ep: &mut dyn TransportEndpoint<T>, what: &str) -> Envelope<T> {
    match ep.recv_timeout(ARRIVAL) {
        TransportRecv::Envelope(env) => env,
        TransportRecv::TimedOut => panic!("{what}: envelope never arrived"),
        TransportRecv::Closed => panic!("{what}: plane closed"),
    }
}

/// Contract 1: envelopes reach the addressed endpoint on each plane with
/// `from`, `tag`, `generation` and payload intact.
pub fn delivery_on_both_planes(transport: &dyn Transport<u64>) {
    let mut wires = transport.open(3).expect("open fabric");
    wires.data[0]
        .send(
            2,
            Envelope {
                from: 0,
                tag: 11,
                generation: 5,
                payload: vec![1, 2, 3],
            },
        )
        .expect("data-plane send");
    wires.words[1]
        .send(
            2,
            Envelope {
                from: 1,
                tag: 22,
                generation: 7,
                payload: vec![9],
            },
        )
        .expect("word-plane send");

    let env = expect_envelope(wires.data[2].as_mut(), "data plane");
    assert_eq!(
        (env.from, env.tag, env.generation, env.payload),
        (0, 11, 5, vec![1, 2, 3]),
        "data-plane envelope must arrive unmodified"
    );
    let env = expect_envelope(wires.words[2].as_mut(), "word plane");
    assert_eq!(
        (env.from, env.tag, env.generation, env.payload),
        (1, 22, 7, vec![9]),
        "word-plane envelope must arrive unmodified (fence stamp included)"
    );
}

/// Contract 2: envelopes from a fixed sender to a fixed receiver arrive in
/// sending order.
pub fn per_pair_fifo(transport: &dyn Transport<u64>) {
    let mut wires = transport.open(2).expect("open fabric");
    const N: u64 = 64;
    for tag in 0..N {
        wires.data[0]
            .send(
                1,
                Envelope {
                    from: 0,
                    tag,
                    generation: 0,
                    payload: vec![tag],
                },
            )
            .expect("send");
    }
    for tag in 0..N {
        let env = expect_envelope(wires.data[1].as_mut(), "fifo");
        assert_eq!(env.tag, tag, "per-pair envelopes must arrive in order");
    }
}

/// Contract 3: a receive with nothing pending returns
/// [`TransportRecv::TimedOut`] in bounded time — the primitive the
/// communicator's abort poll loop is built on.
pub fn timed_receive_times_out(transport: &dyn Transport<u64>) {
    let mut wires = transport.open(2).expect("open fabric");
    let started = Instant::now();
    assert!(
        matches!(
            wires.data[0].recv_timeout(Duration::from_millis(25)),
            TransportRecv::TimedOut
        ),
        "an idle receive must time out, not block or close"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the timeout must be honoured promptly (abort responsiveness)"
    );
}

/// Contract 4: after `drain`, no envelope sent before the call is ever
/// received; envelopes sent after it are unaffected.  Checked on both
/// planes.
pub fn drain_discards_prior_envelopes(transport: &dyn Transport<u64>) {
    let mut wires = transport.open(2).expect("open fabric");

    for (plane, endpoints) in [("data", &mut wires.data), ("words", &mut wires.words)] {
        let (head, tail) = endpoints.split_at_mut(1);
        let (a, b) = (&mut head[0], &mut tail[0]);
        a.send(
            1,
            Envelope {
                from: 0,
                tag: 1,
                generation: 0,
                payload: vec![1],
            },
        )
        .expect("pre-drain send");
        b.drain();
        assert!(
            matches!(
                b.recv_timeout(Duration::from_millis(50)),
                TransportRecv::TimedOut
            ),
            "{plane}: a drained envelope must never be received"
        );
        a.send(
            1,
            Envelope {
                from: 0,
                tag: 2,
                generation: 0,
                payload: vec![2],
            },
        )
        .expect("post-drain send");
        let env = expect_envelope(b.as_mut(), "post-drain");
        assert_eq!(
            env.tag, 2,
            "{plane}: envelopes sent after a drain must be unaffected"
        );
    }
}

/// Contract 5 (machine level): an envelope a clean job sent but never
/// received is fenced out of the next job by its stale generation stamp.
pub fn stale_generation_envelopes_are_dropped(transport: &dyn Transport<u64>) {
    let mut pool: ResidentCgm<u64> =
        ResidentCgm::try_new_on(CgmConfig::new(2), transport).expect("pool over transport");
    pool.run(|ctx: &mut ProcCtx<u64>| {
        if ctx.id() == 0 {
            ctx.comm_mut().send(1, 0, vec![111]);
        }
    });
    let out = pool.run(|ctx: &mut ProcCtx<u64>| {
        if ctx.id() == 0 {
            ctx.comm_mut().send(1, 0, vec![222]);
            vec![]
        } else {
            ctx.comm_mut().recv(0, 0)
        }
    });
    assert_eq!(
        out.results()[1],
        vec![222],
        "the fence must drop the stale envelope, not deliver it into the next job"
    );
    pool.shutdown();
}

/// Contract 6 (machine level): a processor panicking while its peers are
/// parked in a **blocked receive** (not a barrier) must wake them; the
/// failure is attributed to the root cause.
pub fn abort_wakes_parked_receivers(transport: &dyn Transport<u64>) {
    let mut pool: ResidentCgm<u64> =
        ResidentCgm::try_new_on(CgmConfig::new(3), transport).expect("pool over transport");
    let err = pool
        .try_run(|ctx: &mut ProcCtx<u64>| {
            if ctx.id() == 2 {
                panic!("conformance abort");
            }
            // Parked forever unless the abort wakes us: nobody sends this.
            let _ = ctx.comm_mut().recv(2, 77);
        })
        .expect_err("the job must fail");
    match err {
        CgmError::ProcessorPanicked { proc, ref message } => {
            assert_eq!(proc, 2, "the root cause must be blamed, not a woken peer");
            assert!(message.contains("conformance abort"));
        }
        other => panic!("unexpected error: {other}"),
    }
    pool.shutdown();
}

/// Contract 7 (machine level): pool recovery after a panicked job drains
/// its in-flight envelopes; the next job runs on a clean fabric.
pub fn recovery_drains_panicked_job_envelopes(transport: &dyn Transport<u64>) {
    let mut pool: ResidentCgm<u64> =
        ResidentCgm::try_new_on(CgmConfig::new(2), transport).expect("pool over transport");
    let err = pool
        .try_run(|ctx: &mut ProcCtx<u64>| {
            if ctx.id() == 0 {
                ctx.comm_mut().send(1, 0, vec![99u64]);
            }
            panic!("both die");
        })
        .expect_err("the job must fail");
    assert!(matches!(err, CgmError::ProcessorPanicked { .. }));
    assert_eq!(pool.recoveries(), 1);
    let out = pool.run(|ctx: &mut ProcCtx<u64>| {
        if ctx.id() == 0 {
            ctx.comm_mut().send(1, 1, vec![1u64]);
            vec![]
        } else {
            ctx.comm_mut().recv(0, 1)
        }
    });
    assert_eq!(
        out.results()[1],
        vec![1],
        "recovery must have drained the panicked job's envelope"
    );
    pool.shutdown();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ThreadTransport;

    // The thread transport runs the full battery in-harness; the process
    // transport runs it from the `transport_conformance` integration test,
    // which is `harness = false` so its `main` can perform the re-exec
    // hook (`process::init`).
    #[test]
    fn thread_transport_conforms() {
        check(&ThreadTransport);
    }
}
