//! Wire codecs: how payload items cross a process boundary.
//!
//! The thread transport moves `Vec<T>` by value and needs none of this.  A
//! transport that leaves the address space must serialize, and there is no
//! serde here (all dependencies are vendored shims) — so the contract is a
//! deliberately small trait, [`Wire`], with little-endian fixed-width
//! implementations for the primitive types plus length-prefixed `String`.
//!
//! The executors stay generic over `T: Send + 'static` (nothing above the
//! fabric grows a `Wire` bound).  Instead the process transport looks a
//! codec up **at runtime** by `TypeId` when a fabric is opened: primitives
//! are pre-registered, custom payload types opt in once via
//! [`register_wire`], and an unregistered type fails fabric construction
//! with [`crate::CgmError::TransportUnsupportedPayload`] — an error value,
//! not a compile-time split of the whole API.
//!
//! ```
//! use cgp_cgm::transport::wire::{self, Wire};
//!
//! let mut bytes = Vec::new();
//! u64::encode_into(&[1, 2, 3], &mut bytes);
//! assert_eq!(bytes.len(), 24);
//! assert_eq!(u64::decode(&bytes).unwrap(), vec![1, 2, 3]);
//!
//! // Codecs for primitives are pre-registered for the process transport:
//! assert!(wire::wire_fns::<u64>().is_some());
//! assert!(wire::wire_fns::<Vec<u8>>().is_none()); // no codec, no fabric
//! ```

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// A payload item that can cross a process boundary.
///
/// Implementations must round-trip: `decode(encode_into(items)) == items`
/// for every slice, and `decode` must reject malformed input with an error
/// instead of panicking (frames arrive from another process).
pub trait Wire: Sized + Send + 'static {
    /// Appends the serialized form of `items` to `out`.
    fn encode_into(items: &[Self], out: &mut Vec<u8>);

    /// Parses a payload serialized by [`Wire::encode_into`].
    fn decode(bytes: &[u8]) -> Result<Vec<Self>, WireError>;
}

/// A payload failed to parse (truncated frame, invalid encoding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was wrong with the bytes.
    pub message: String,
}

impl WireError {
    fn new(message: impl Into<String>) -> Self {
        WireError {
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode failed: {}", self.message)
    }
}

impl std::error::Error for WireError {}

/// The codec of one payload type, as the transport stores it: plain
/// function pointers, so the registry can hand out copies without lifetime
/// entanglement.
pub struct WireFns<T> {
    /// [`Wire::encode_into`] of the payload type.
    pub encode: fn(&[T], &mut Vec<u8>),
    /// [`Wire::decode`] of the payload type.
    pub decode: fn(&[u8]) -> Result<Vec<T>, WireError>,
}

impl<T> Clone for WireFns<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for WireFns<T> {}

fn registry() -> &'static Mutex<HashMap<TypeId, Box<dyn Any + Send + Sync>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<TypeId, Box<dyn Any + Send + Sync>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut map = HashMap::new();
        macro_rules! builtin {
            ($($ty:ty),*) => {
                $(map.insert(
                    TypeId::of::<$ty>(),
                    Box::new(WireFns::<$ty> {
                        encode: <$ty as Wire>::encode_into,
                        decode: <$ty as Wire>::decode,
                    }) as Box<dyn Any + Send + Sync>,
                );)*
            };
        }
        builtin!(
            u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, usize, isize, f32, f64, bool, char,
            String
        );
        Mutex::new(map)
    })
}

/// Registers the codec of a custom [`Wire`] payload type, making it usable
/// with the process transport.  Idempotent.
pub fn register_wire<T: Wire>() {
    registry().lock().unwrap_or_else(|e| e.into_inner()).insert(
        TypeId::of::<T>(),
        Box::new(WireFns::<T> {
            encode: T::encode_into,
            decode: T::decode,
        }),
    );
}

/// Looks the codec of `T` up: `Some` for primitives and every type passed
/// through [`register_wire`], `None` otherwise.  This runtime lookup is
/// what keeps the executor APIs at `T: Send + 'static` while the process
/// transport still gets a typed codec.
pub fn wire_fns<T: Send + 'static>() -> Option<WireFns<T>> {
    registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(&TypeId::of::<T>())
        .and_then(|any| any.downcast_ref::<WireFns<T>>())
        .copied()
}

macro_rules! fixed_width_wire {
    ($($ty:ty),*) => {
        $(impl Wire for $ty {
            fn encode_into(items: &[Self], out: &mut Vec<u8>) {
                out.reserve(items.len() * std::mem::size_of::<$ty>());
                for item in items {
                    out.extend_from_slice(&item.to_le_bytes());
                }
            }

            fn decode(bytes: &[u8]) -> Result<Vec<Self>, WireError> {
                const WIDTH: usize = std::mem::size_of::<$ty>();
                if !bytes.len().is_multiple_of(WIDTH) {
                    return Err(WireError::new(format!(
                        "{} bytes is not a whole number of {}-byte items",
                        bytes.len(),
                        WIDTH
                    )));
                }
                Ok(bytes
                    .chunks_exact(WIDTH)
                    .map(|chunk| <$ty>::from_le_bytes(chunk.try_into().expect("exact chunk")))
                    .collect())
            }
        })*
    };
}

fixed_width_wire!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

/// `usize`/`isize` travel as 64-bit so frames are portable between
/// processes of (hypothetically) different pointer widths.
impl Wire for usize {
    fn encode_into(items: &[Self], out: &mut Vec<u8>) {
        out.reserve(items.len() * 8);
        for item in items {
            out.extend_from_slice(&(*item as u64).to_le_bytes());
        }
    }

    fn decode(bytes: &[u8]) -> Result<Vec<Self>, WireError> {
        u64::decode(bytes)?
            .into_iter()
            .map(|x| usize::try_from(x).map_err(|_| WireError::new("usize overflow")))
            .collect()
    }
}

impl Wire for isize {
    fn encode_into(items: &[Self], out: &mut Vec<u8>) {
        out.reserve(items.len() * 8);
        for item in items {
            out.extend_from_slice(&(*item as i64).to_le_bytes());
        }
    }

    fn decode(bytes: &[u8]) -> Result<Vec<Self>, WireError> {
        i64::decode(bytes)?
            .into_iter()
            .map(|x| isize::try_from(x).map_err(|_| WireError::new("isize overflow")))
            .collect()
    }
}

impl Wire for bool {
    fn encode_into(items: &[Self], out: &mut Vec<u8>) {
        out.extend(items.iter().map(|&b| b as u8));
    }

    fn decode(bytes: &[u8]) -> Result<Vec<Self>, WireError> {
        bytes
            .iter()
            .map(|&b| match b {
                0 => Ok(false),
                1 => Ok(true),
                other => Err(WireError::new(format!("invalid bool byte {other}"))),
            })
            .collect()
    }
}

impl Wire for char {
    fn encode_into(items: &[Self], out: &mut Vec<u8>) {
        for item in items {
            out.extend_from_slice(&(*item as u32).to_le_bytes());
        }
    }

    fn decode(bytes: &[u8]) -> Result<Vec<Self>, WireError> {
        u32::decode(bytes)?
            .into_iter()
            .map(|x| char::from_u32(x).ok_or_else(|| WireError::new("invalid char scalar")))
            .collect()
    }
}

impl Wire for String {
    fn encode_into(items: &[Self], out: &mut Vec<u8>) {
        for item in items {
            out.extend_from_slice(&(item.len() as u64).to_le_bytes());
            out.extend_from_slice(item.as_bytes());
        }
    }

    fn decode(bytes: &[u8]) -> Result<Vec<Self>, WireError> {
        let mut out = Vec::new();
        let mut rest = bytes;
        while !rest.is_empty() {
            if rest.len() < 8 {
                return Err(WireError::new("truncated string length prefix"));
            }
            let (len, tail) = rest.split_at(8);
            let len = u64::from_le_bytes(len.try_into().expect("8 bytes")) as usize;
            if tail.len() < len {
                return Err(WireError::new("truncated string body"));
            }
            let (body, next) = tail.split_at(len);
            out.push(
                String::from_utf8(body.to_vec())
                    .map_err(|_| WireError::new("string body is not UTF-8"))?,
            );
            rest = next;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug + Clone>(items: &[T]) {
        let mut bytes = Vec::new();
        T::encode_into(items, &mut bytes);
        assert_eq!(T::decode(&bytes).unwrap(), items);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip::<u64>(&[0, 1, u64::MAX]);
        round_trip::<i32>(&[-5, 0, i32::MAX]);
        round_trip::<u8>(&[0, 255]);
        round_trip::<usize>(&[0, usize::MAX]);
        round_trip::<f64>(&[0.5, -1.25]);
        round_trip::<bool>(&[true, false, true]);
        round_trip::<char>(&['a', 'ß', '🦀']);
        round_trip::<u64>(&[]);
    }

    #[test]
    fn strings_round_trip() {
        round_trip::<String>(&["".into(), "hello".into(), "ünïcode 🦀".into()]);
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        assert!(u64::decode(&[1, 2, 3]).is_err());
        assert!(bool::decode(&[2]).is_err());
        assert!(char::decode(&0xD800u32.to_le_bytes()).is_err());
        assert!(String::decode(&[9, 0, 0, 0, 0, 0, 0, 0, b'x']).is_err());
        assert!(String::decode(&[3]).is_err());
    }

    #[test]
    fn registry_knows_primitives_and_accepts_custom_types() {
        assert!(wire_fns::<u64>().is_some());
        assert!(wire_fns::<String>().is_some());

        #[derive(Debug, PartialEq)]
        struct Meters(u64);
        impl Wire for Meters {
            fn encode_into(items: &[Self], out: &mut Vec<u8>) {
                for item in items {
                    out.extend_from_slice(&item.0.to_le_bytes());
                }
            }
            fn decode(bytes: &[u8]) -> Result<Vec<Self>, WireError> {
                Ok(u64::decode(bytes)?.into_iter().map(Meters).collect())
            }
        }
        assert!(wire_fns::<Meters>().is_none());
        register_wire::<Meters>();
        let fns = wire_fns::<Meters>().expect("registered");
        let mut bytes = Vec::new();
        (fns.encode)(&[Meters(7)], &mut bytes);
        assert_eq!((fns.decode)(&bytes).unwrap(), vec![Meters(7)]);
    }
}
