//! Thread-local startup counters: how many channel fabrics were built and
//! how many worker threads were spawned *by the current thread*.
//!
//! The whole point of the resident pool ([`crate::ResidentCgm`]) and of the
//! fused permutation pipeline on top of it is that steady-state work makes
//! **zero** thread spawns and **zero** fabric constructions.  These counters
//! make that property testable: snapshot, run the steady-state loop,
//! snapshot again, assert the deltas are zero.
//!
//! The counters are thread-local on purpose.  Every fabric construction and
//! every worker spawn happens on the thread that *submits* the work (the
//! one-shot machine builds its fabric and spawns its scoped threads from the
//! caller; the pool spawns its residents inside `try_new`), so a test
//! observes exactly its own activity — concurrent tests on other threads
//! cannot perturb the deltas.
//!
//! ```
//! use cgp_cgm::{diag, CgmConfig, CgmMachine, ResidentCgm};
//!
//! let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(2)); // spawns here
//! let before = diag::startup_counters();
//! for _ in 0..10 {
//!     pool.run(|ctx| ctx.id()); // workers are woken, not spawned
//! }
//! assert_eq!(diag::startup_counters(), before);
//!
//! CgmMachine::with_procs(2).run(|ctx: &mut cgp_cgm::ProcCtx<u64>| ctx.id());
//! let after = diag::startup_counters();
//! assert_eq!(after.fabric_builds, before.fabric_builds + 1);
//! assert_eq!(after.thread_spawns, before.thread_spawns + 2);
//! ```

use std::cell::Cell;

thread_local! {
    static FABRIC_BUILDS: Cell<u64> = const { Cell::new(0) };
    static THREAD_SPAWNS: Cell<u64> = const { Cell::new(0) };
    static PROCESS_SPAWNS: Cell<u64> = const { Cell::new(0) };
}

pub(crate) fn note_fabric_build() {
    FABRIC_BUILDS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn note_thread_spawn() {
    THREAD_SPAWNS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn note_process_spawn() {
    PROCESS_SPAWNS.with(|c| c.set(c.get() + 1));
}

/// A snapshot of the current thread's cumulative startup activity.
///
/// Both counters are monotone; tests compare two snapshots and look at the
/// difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartupCounters {
    /// Channel fabrics (the all-pairs sender/receiver sets of both planes
    /// plus barrier and abort flag) built by this thread so far.
    pub fabric_builds: u64,
    /// Virtual-processor worker threads spawned by this thread so far (both
    /// the one-shot machine's scoped threads and the pool's residents).
    pub thread_spawns: u64,
    /// Mailbox child processes spawned by this thread so far (the process
    /// transport spawns one per virtual processor when its fabric opens;
    /// the thread transport never increments this).
    pub process_spawns: u64,
}

/// Reads the current thread's startup counters.
pub fn startup_counters() -> StartupCounters {
    StartupCounters {
        fabric_builds: FABRIC_BUILDS.with(Cell::get),
        thread_spawns: THREAD_SPAWNS.with(Cell::get),
        process_spawns: PROCESS_SPAWNS.with(Cell::get),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone_and_thread_local() {
        let before = startup_counters();
        note_fabric_build();
        note_thread_spawn();
        note_thread_spawn();
        note_process_spawn();
        let after = startup_counters();
        assert_eq!(after.fabric_builds, before.fabric_builds + 1);
        assert_eq!(after.thread_spawns, before.thread_spawns + 2);
        assert_eq!(after.process_spawns, before.process_spawns + 1);
        // Another thread's activity is invisible here.
        std::thread::spawn(|| {
            note_fabric_build();
            note_thread_spawn();
        })
        .join()
        .unwrap();
        assert_eq!(startup_counters(), after);
    }
}
