//! Error type for the coarse grained machine simulator.

use std::fmt;

/// Errors raised by the CGM simulator and by algorithms running on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CgmError {
    /// A processor index was outside `0..p`.
    InvalidProcessor {
        /// The offending index.
        proc: usize,
        /// The number of processors in the machine.
        procs: usize,
    },
    /// The machine was configured with zero processors.
    NoProcessors,
    /// Block sizes do not describe the data they are supposed to describe
    /// (e.g. source and target distributions disagree on the total).
    BlockMismatch {
        /// Total number of items on the source side.
        source_total: u64,
        /// Total number of items on the target side.
        target_total: u64,
    },
    /// A receive could not be matched because the sending processor has
    /// terminated without sending (the channel is closed).
    ChannelClosed {
        /// The processor we expected a message from.
        from: usize,
    },
    /// A virtual processor panicked; the payload is its panic message.
    ProcessorPanicked {
        /// The processor that panicked.
        proc: usize,
        /// The textual panic message, if it was a string.
        message: String,
    },
    /// The resident worker pool has lost its worker threads (they were shut
    /// down or died abnormally) and can run no further jobs.
    PoolShutDown,
    /// The operating system refused to spawn a resident worker thread.
    WorkerSpawnFailed {
        /// The virtual processor whose worker could not be spawned.
        proc: usize,
        /// The OS error message.
        message: String,
    },
    /// A transport that serializes payloads (the process transport) was
    /// asked to carry a type with no registered wire codec; see
    /// [`crate::transport::wire::register_wire`].
    TransportUnsupportedPayload {
        /// The payload type the transport could not serialize.
        type_name: &'static str,
    },
    /// A transport could not open its fabric (socket setup, mailbox
    /// process spawn or handshake failure).
    TransportSetupFailed {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CgmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CgmError::InvalidProcessor { proc, procs } => {
                write!(
                    f,
                    "processor index {proc} out of range (machine has {procs})"
                )
            }
            CgmError::NoProcessors => write!(f, "a CGM machine needs at least one processor"),
            CgmError::BlockMismatch {
                source_total,
                target_total,
            } => write!(
                f,
                "source blocks hold {source_total} items but target blocks hold {target_total}"
            ),
            CgmError::ChannelClosed { from } => {
                write!(
                    f,
                    "processor {from} terminated before sending an expected message"
                )
            }
            CgmError::ProcessorPanicked { proc, message } => {
                write!(f, "virtual processor {proc} panicked: {message}")
            }
            CgmError::PoolShutDown => {
                write!(
                    f,
                    "the resident CGM worker pool is shut down and can run no further jobs"
                )
            }
            CgmError::WorkerSpawnFailed { proc, message } => {
                write!(
                    f,
                    "could not spawn the resident worker thread for virtual processor \
                     {proc}: {message}"
                )
            }
            CgmError::TransportUnsupportedPayload { type_name } => {
                write!(
                    f,
                    "the process transport has no wire codec for payload type {type_name}; \
                     register one with cgp_cgm::transport::wire::register_wire"
                )
            }
            CgmError::TransportSetupFailed { message } => {
                write!(f, "transport fabric setup failed: {message}")
            }
        }
    }
}

impl std::error::Error for CgmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CgmError::InvalidProcessor { proc: 9, procs: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = CgmError::BlockMismatch {
            source_total: 10,
            target_total: 12,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: std::error::Error>(_e: &E) {}
        assert_error(&CgmError::NoProcessors);
    }
}
