//! Machine-internal synchronisation: the poisonable superstep barrier and
//! the abort flag that lets a panicking virtual processor wake its peers.
//!
//! `std::sync::Barrier` has no failure story: if one processor panics while
//! its peers are already parked in `wait()`, those peers sleep forever.  The
//! one-shot machine mostly got away with that because a dying thread closes
//! its channel endpoints, but a resident worker pool cannot — its channels
//! stay open across jobs, so a panicked job must *actively* wake everything
//! that is blocked.  Two pieces cooperate:
//!
//! * [`SuperstepBarrier`] — a generation-counting barrier that can be
//!   **poisoned**: `poison(culprit)` wakes every current and future waiter,
//!   which then unwind with an [`AbortPanic`] payload instead of blocking.
//!   After the fabric has been drained, `reset()` arms it for the next job.
//! * [`AbortFlag`] — a machine-wide flag recording which processor panicked
//!   first.  Blocking receives poll it (see `Communicator::recv`) so a
//!   processor waiting for a message its dead peer will never send also
//!   unwinds promptly.
//!
//! Panics caused by the abort protocol carry the [`AbortPanic`] payload so
//! the machine can tell the *root cause* (the processor whose own code
//! panicked) apart from the secondary unwinds it triggered, and report only
//! the former to the caller.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Panic payload used for the *secondary* panics of the abort protocol:
/// processors that unwind only because a peer died carry this payload, so
/// outcome collection can skip them when attributing the failure.
#[derive(Debug)]
pub(crate) struct AbortPanic {
    /// The processor whose panic triggered the abort.
    pub culprit: usize,
}

/// Unwinds the current virtual processor because `culprit` panicked.
pub(crate) fn abort_unwind(culprit: usize) -> ! {
    std::panic::panic_any(AbortPanic { culprit })
}

/// Best-effort textual rendering of a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(a) = payload.downcast_ref::<AbortPanic>() {
        format!("aborted because virtual processor {} panicked", a.culprit)
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Machine-wide "a processor has panicked" flag.
///
/// Encoded in one atomic: `0` means clear, `proc + 1` means processor
/// `proc` panicked.  Only the first trigger wins — later panics are
/// secondary casualties of the abort and keep the original culprit.
#[derive(Debug, Default)]
pub(crate) struct AbortFlag {
    state: AtomicUsize,
}

impl AbortFlag {
    pub(crate) fn new() -> Self {
        AbortFlag::default()
    }

    /// Records that `proc` panicked, unless an earlier panic already did.
    pub(crate) fn trigger(&self, proc: usize) {
        let _ = self
            .state
            .compare_exchange(0, proc + 1, Ordering::AcqRel, Ordering::Acquire);
    }

    /// The first processor that panicked, if any.
    pub(crate) fn culprit(&self) -> Option<usize> {
        match self.state.load(Ordering::Acquire) {
            0 => None,
            n => Some(n - 1),
        }
    }

    /// Re-arms the flag for the next job (resident pool only; called once
    /// every worker is parked again).
    pub(crate) fn clear(&self) {
        self.state.store(0, Ordering::Release);
    }
}

#[derive(Debug, Default)]
struct BarrierState {
    /// Processors currently parked in `wait()`.
    arrived: usize,
    /// Incremented every time a full cohort is released; parked waiters key
    /// off it to tell "my cohort released" from a spurious wakeup.
    generation: u64,
    /// `Some(culprit)` once poisoned; every current and future waiter
    /// returns [`BarrierWait::Poisoned`] until `reset()`.
    poisoned: Option<usize>,
}

/// What `wait()` observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BarrierWait {
    /// The whole cohort arrived; proceed with the next superstep.
    Released,
    /// The barrier was poisoned because the given processor panicked.
    Poisoned(usize),
}

/// A reusable, poisonable barrier for `parties` virtual processors.
#[derive(Debug)]
pub(crate) struct SuperstepBarrier {
    parties: usize,
    state: Mutex<BarrierState>,
    cvar: Condvar,
}

impl SuperstepBarrier {
    pub(crate) fn new(parties: usize) -> Self {
        SuperstepBarrier {
            parties,
            state: Mutex::new(BarrierState::default()),
            cvar: Condvar::new(),
        }
    }

    /// Parks until all `parties` processors arrive, or until the barrier is
    /// poisoned — whichever happens first.
    pub(crate) fn wait(&self) -> BarrierWait {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(culprit) = state.poisoned {
            return BarrierWait::Poisoned(culprit);
        }
        state.arrived += 1;
        if state.arrived == self.parties {
            state.arrived = 0;
            state.generation = state.generation.wrapping_add(1);
            self.cvar.notify_all();
            return BarrierWait::Released;
        }
        let generation = state.generation;
        loop {
            state = self.cvar.wait(state).unwrap_or_else(|e| e.into_inner());
            if let Some(culprit) = state.poisoned {
                return BarrierWait::Poisoned(culprit);
            }
            if state.generation != generation {
                return BarrierWait::Released;
            }
        }
    }

    /// Poisons the barrier on behalf of `culprit`: every parked waiter wakes
    /// with [`BarrierWait::Poisoned`] and every later `wait()` returns it
    /// immediately, until [`SuperstepBarrier::reset`].
    pub(crate) fn poison(&self, culprit: usize) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.poisoned.is_none() {
            state.poisoned = Some(culprit);
        }
        self.cvar.notify_all();
    }

    /// Clears poison and arrival state (resident pool recovery; only sound
    /// once no processor is inside `wait()`).
    pub(crate) fn reset(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.arrived = 0;
        state.poisoned = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn barrier_releases_full_cohort() {
        let barrier = Arc::new(SuperstepBarrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        assert_eq!(b.wait(), BarrierWait::Released);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn poison_wakes_parked_waiters() {
        let barrier = Arc::new(SuperstepBarrier::new(3));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&barrier);
                std::thread::spawn(move || b.wait())
            })
            .collect();
        // Give both waiters time to park, then poison instead of arriving.
        std::thread::sleep(std::time::Duration::from_millis(20));
        barrier.poison(7);
        for w in waiters {
            assert_eq!(w.join().unwrap(), BarrierWait::Poisoned(7));
        }
        // Still poisoned for late arrivals …
        assert_eq!(barrier.wait(), BarrierWait::Poisoned(7));
        // … until reset re-arms it.
        barrier.reset();
        let b = Arc::clone(&barrier);
        let late = std::thread::spawn(move || b.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        barrier.poison(1);
        assert_eq!(late.join().unwrap(), BarrierWait::Poisoned(1));
    }

    #[test]
    fn abort_flag_first_trigger_wins() {
        let flag = AbortFlag::new();
        assert_eq!(flag.culprit(), None);
        flag.trigger(3);
        flag.trigger(5);
        assert_eq!(flag.culprit(), Some(3));
        flag.clear();
        assert_eq!(flag.culprit(), None);
        flag.trigger(0);
        assert_eq!(flag.culprit(), Some(0));
    }
}
