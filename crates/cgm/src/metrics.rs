//! Metering of work and communication, and the PRO cost model.
//!
//! The PRO model (Gebremedhin, Guérin Lassous, Gustedt & Telle, 2002) judges
//! an algorithm by the resources each processor uses relative to the best
//! sequential algorithm: computation time, memory, communication volume and
//! number of supersteps.  Theorem 1 of the permutation paper claims `O(m)`
//! per processor for memory, time, random numbers and bandwidth; Theorem 2
//! claims `Θ(p)` per processor for the cost-optimal matrix sampler.  The
//! simulator's counters below are the observables those claims are checked
//! against in the experiment harness.

use std::time::Duration;

/// Per-processor counters, collected while an algorithm runs on the machine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcMetrics {
    /// Messages sent by this processor (excluding messages to itself).
    pub messages_sent: u64,
    /// Payload words (elements) sent, including local self-delivery.
    pub words_sent: u64,
    /// Messages received from other processors.
    pub messages_received: u64,
    /// Payload words received, including local self-delivery.
    pub words_received: u64,
    /// Number of barrier synchronisations this processor took part in.
    pub barriers: u64,
    /// Number of supersteps this processor started.
    pub supersteps: u64,
    /// Bytes this processor framed onto an inter-process medium (serialized
    /// payloads plus frame headers).  `0` on the default thread transport,
    /// where payloads move by value — the observable form of its
    /// "zero wire overhead" claim.  `words_sent`/`words_received` stay
    /// substrate-independent; this counter is the substrate's surcharge.
    pub wire_bytes: u64,
}

impl ProcMetrics {
    /// Adds another metrics record into this one (used when a processor runs
    /// several phases whose metrics were collected separately).
    pub fn merge(&mut self, other: &ProcMetrics) {
        self.messages_sent += other.messages_sent;
        self.words_sent += other.words_sent;
        self.messages_received += other.messages_received;
        self.words_received += other.words_received;
        self.barriers += other.barriers;
        self.supersteps += other.supersteps;
        self.wire_bytes += other.wire_bytes;
    }

    /// Total communication volume (sent + received words) attributed to this
    /// processor — the "bandwidth" resource of Theorem 1.
    pub fn comm_volume(&self) -> u64 {
        self.words_sent + self.words_received
    }
}

/// Aggregated view over all processors of one run.
///
/// Every job meters two channel planes separately, which is what gives a
/// fused run of Algorithm 1 its per-phase attribution without re-running
/// anything:
///
/// * [`per_proc`](MachineMetrics::per_proc) — the **data plane**, the typed
///   `Vec<T>` payloads of the algorithm proper (for the permutation engine:
///   the `O(m)` item exchange);
/// * [`matrix_plane`](MachineMetrics::matrix_plane) — the **word plane**
///   (`Vec<u64>` envelopes), which the in-context matrix samplers of
///   `cgp-matrix` use for their `O(p)`-sized demand vectors and row
///   scatters.
///
/// The aggregate methods ([`max_comm_volume`](MachineMetrics::max_comm_volume)
/// and friends) keep their historical meaning and read the data plane; the
/// `matrix_*` methods read the word plane.
#[derive(Debug, Clone, Default)]
pub struct MachineMetrics {
    /// The per-processor data-plane records, indexed by processor id.
    pub per_proc: Vec<ProcMetrics>,
    /// The per-processor word-plane (matrix-phase) records, indexed by
    /// processor id.  Empty for runs that never touched the word plane and
    /// for views produced by [`MachineMetrics::matrix_phase`].
    pub matrix_plane: Vec<ProcMetrics>,
    /// Wall-clock time of the whole run (spawn to join).
    pub elapsed: Duration,
}

impl MachineMetrics {
    /// Number of processors that took part in the run.
    pub fn procs(&self) -> usize {
        self.per_proc.len()
    }

    /// Sum of words sent over all processors — the total communication
    /// volume of the algorithm.
    pub fn total_words_sent(&self) -> u64 {
        self.per_proc.iter().map(|m| m.words_sent).sum()
    }

    /// Sum of messages over all processors.
    pub fn total_messages(&self) -> u64 {
        self.per_proc.iter().map(|m| m.messages_sent).sum()
    }

    /// Maximum over processors of the communication volume — the balance
    /// criterion looks at this relative to the average.
    pub fn max_comm_volume(&self) -> u64 {
        self.per_proc
            .iter()
            .map(|m| m.comm_volume())
            .max()
            .unwrap_or(0)
    }

    /// Average communication volume per processor.
    pub fn avg_comm_volume(&self) -> f64 {
        if self.per_proc.is_empty() {
            return 0.0;
        }
        self.per_proc.iter().map(|m| m.comm_volume()).sum::<u64>() as f64
            / self.per_proc.len() as f64
    }

    /// Communication balance factor: max volume / average volume.  `1.0` is
    /// perfectly balanced; the paper's "balance" criterion requires this to
    /// stay bounded by a constant.
    pub fn comm_balance(&self) -> f64 {
        let avg = self.avg_comm_volume();
        if avg == 0.0 {
            1.0
        } else {
            self.max_comm_volume() as f64 / avg
        }
    }

    /// Maximum number of supersteps used by any processor.
    pub fn supersteps(&self) -> u64 {
        self.per_proc
            .iter()
            .map(|m| m.supersteps)
            .max()
            .unwrap_or(0)
    }

    /// Total communication volume (sent + received words) over the word
    /// plane — what the matrix phase of a fused run cost in bandwidth.
    pub fn matrix_volume(&self) -> u64 {
        self.matrix_plane.iter().map(|m| m.comm_volume()).sum()
    }

    /// Maximum number of word-plane supersteps used by any processor — the
    /// number of matrix-phase rounds of a fused run (`⌈log₂ p⌉` for the
    /// parallel samplers, 1 for the head-and-scatter sequential ones).
    pub fn matrix_rounds(&self) -> u64 {
        self.matrix_plane
            .iter()
            .map(|m| m.supersteps)
            .max()
            .unwrap_or(0)
    }

    /// Total bytes framed onto an inter-process medium across both planes
    /// and all processors — `0` for a run on the thread transport.
    pub fn wire_volume(&self) -> u64 {
        self.per_proc
            .iter()
            .chain(&self.matrix_plane)
            .map(|m| m.wire_bytes)
            .sum()
    }

    /// The word-plane (matrix-phase) traffic of this run viewed as its own
    /// [`MachineMetrics`]: `per_proc` of the view holds the word-plane
    /// counters, so all aggregate methods apply to the matrix phase.  This
    /// is what the standalone matrix-sampling wrappers of `cgp-matrix`
    /// return, and what a [`cgp_core`-style] report carries as its
    /// matrix-phase meter.
    ///
    /// [`cgp_core`-style]: self
    pub fn matrix_phase(&self) -> MachineMetrics {
        MachineMetrics {
            per_proc: self.matrix_plane.clone(),
            matrix_plane: Vec::new(),
            elapsed: self.elapsed,
        }
    }
}

/// A simple linear (BSP-style) communication cost model: transferring a
/// message of `k` words costs `latency + k · per_word` time units.
///
/// The PRO model assumes the coarse grained communication cost depends only
/// on `p` and the point-to-point bandwidth; this model lets experiments
/// translate metered volumes into predicted times for machines with different
/// latency/bandwidth ratios, which is how the scaling experiment (E3)
/// extrapolates the shape of the paper's Origin-2000 table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed cost per message (the BSP latency / overhead `L` contribution).
    pub latency_per_message: f64,
    /// Cost per transferred word (the inverse bandwidth `g`).
    pub time_per_word: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Unit-less defaults: one word costs 1, a message costs as much as
        // 1000 words.  Experiments override these to explore the space.
        CostModel {
            latency_per_message: 1_000.0,
            time_per_word: 1.0,
        }
    }
}

impl CostModel {
    /// Predicted communication time charged to one processor.
    pub fn proc_cost(&self, m: &ProcMetrics) -> f64 {
        self.latency_per_message * (m.messages_sent + m.messages_received) as f64
            + self.time_per_word * m.comm_volume() as f64
    }

    /// Predicted communication makespan: the maximum per-processor cost, as
    /// supersteps end only when the slowest processor is done.
    pub fn makespan(&self, metrics: &MachineMetrics) -> f64 {
        metrics
            .per_proc
            .iter()
            .map(|m| self.proc_cost(m))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> MachineMetrics {
        MachineMetrics {
            per_proc: vec![
                ProcMetrics {
                    messages_sent: 3,
                    words_sent: 100,
                    messages_received: 3,
                    words_received: 90,
                    barriers: 2,
                    supersteps: 2,
                    wire_bytes: 40,
                },
                ProcMetrics {
                    messages_sent: 3,
                    words_sent: 110,
                    messages_received: 3,
                    words_received: 120,
                    barriers: 2,
                    supersteps: 2,
                    wire_bytes: 44,
                },
            ],
            matrix_plane: vec![
                ProcMetrics {
                    messages_sent: 1,
                    words_sent: 8,
                    messages_received: 0,
                    words_received: 0,
                    barriers: 0,
                    supersteps: 2,
                    wire_bytes: 16,
                },
                ProcMetrics {
                    messages_sent: 0,
                    words_sent: 0,
                    messages_received: 1,
                    words_received: 8,
                    barriers: 0,
                    supersteps: 2,
                    wire_bytes: 0,
                },
            ],
            elapsed: Duration::from_millis(5),
        }
    }

    #[test]
    fn aggregation() {
        let m = sample_metrics();
        assert_eq!(m.procs(), 2);
        assert_eq!(m.total_words_sent(), 210);
        assert_eq!(m.total_messages(), 6);
        assert_eq!(m.max_comm_volume(), 230);
        assert!((m.avg_comm_volume() - 210.0).abs() < 1e-12);
        assert!((m.comm_balance() - 230.0 / 210.0).abs() < 1e-12);
        assert_eq!(m.supersteps(), 2);
        assert_eq!(m.wire_volume(), 100, "wire bytes sum over both planes");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ProcMetrics {
            messages_sent: 1,
            words_sent: 2,
            messages_received: 3,
            words_received: 4,
            barriers: 5,
            supersteps: 6,
            wire_bytes: 7,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.messages_sent, 2);
        assert_eq!(a.words_received, 8);
        assert_eq!(a.supersteps, 12);
        assert_eq!(a.wire_bytes, 14);
        assert_eq!(a.comm_volume(), 2 * (2 + 4));
    }

    #[test]
    fn cost_model_weights_latency_and_bandwidth() {
        let m = ProcMetrics {
            messages_sent: 2,
            words_sent: 50,
            messages_received: 1,
            words_received: 25,
            ..Default::default()
        };
        let cm = CostModel {
            latency_per_message: 10.0,
            time_per_word: 2.0,
        };
        assert!((cm.proc_cost(&m) - (10.0 * 3.0 + 2.0 * 75.0)).abs() < 1e-12);
    }

    #[test]
    fn makespan_is_max_over_procs() {
        let metrics = sample_metrics();
        let cm = CostModel {
            latency_per_message: 0.0,
            time_per_word: 1.0,
        };
        assert!((cm.makespan(&metrics) - 230.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = MachineMetrics::default();
        assert_eq!(m.max_comm_volume(), 0);
        assert_eq!(m.comm_balance(), 1.0);
        assert_eq!(m.supersteps(), 0);
        assert_eq!(m.matrix_volume(), 0);
        assert_eq!(m.matrix_rounds(), 0);
    }

    #[test]
    fn planes_are_attributed_separately() {
        let m = sample_metrics();
        // Data-plane aggregates ignore the word plane entirely …
        assert_eq!(m.total_words_sent(), 210);
        // … and the matrix methods read only the word plane.
        assert_eq!(m.matrix_volume(), 16);
        assert_eq!(m.matrix_rounds(), 2);
        let phase = m.matrix_phase();
        assert_eq!(phase.per_proc, m.matrix_plane);
        assert!(phase.matrix_plane.is_empty());
        assert_eq!(phase.total_words_sent(), 8);
        assert_eq!(phase.supersteps(), 2);
    }
}
