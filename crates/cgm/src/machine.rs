//! The virtual coarse grained machine: configuration, processor contexts and
//! the thread-per-processor runner.

use std::sync::Arc;
use std::time::Instant;

use crate::comm::Communicator;
use crate::error::CgmError;
use crate::metrics::{MachineMetrics, ProcMetrics};
use crate::sync::{panic_message, AbortFlag, AbortPanic, SuperstepBarrier};
use crate::transport::{FabricWires, TransportKind};
use cgp_rng::{Pcg64, SeedSequence};

/// Configuration of a virtual coarse grained machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CgmConfig {
    /// Number of virtual processors `p`.
    pub procs: usize,
    /// Master seed from which every processor's random stream is derived.
    pub seed: u64,
    /// Which transport the machine's fabric is opened on
    /// ([`TransportKind::Threads`] by default).  The substrate never touches
    /// the engine's random streams, so permutations are a function of
    /// `seed` alone — identical across transports.
    pub transport: TransportKind,
}

impl CgmConfig {
    /// A machine with `procs` processors and the default seed `0`.
    ///
    /// # Panics
    /// Panics if `procs == 0`; use [`CgmConfig::try_new`] to handle the
    /// misconfiguration as a value instead.
    pub fn new(procs: usize) -> Self {
        CgmConfig::try_new(procs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: a machine with `procs` processors and seed `0`,
    /// or [`CgmError::NoProcessors`] when `procs == 0`.  Library layers that
    /// accept the processor count from configuration or user input should
    /// route through this so misuse surfaces as an error value rather than
    /// an `assert!` deep inside the simulator.
    pub fn try_new(procs: usize) -> Result<Self, CgmError> {
        if procs == 0 {
            return Err(CgmError::NoProcessors);
        }
        Ok(CgmConfig {
            procs,
            seed: 0,
            transport: TransportKind::Threads,
        })
    }

    /// Replaces the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the transport the fabric is opened on.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }
}

/// Everything a virtual processor has access to while an algorithm runs:
/// its identity, its communicators, and its private random stream.
///
/// Every processor owns **two transport planes** over the same barrier and
/// abort flag:
///
/// * the **data plane** ([`ProcCtx::comm`]/[`ProcCtx::comm_mut`]), typed
///   `Vec<T>`, carrying the algorithm's payload;
/// * the **word plane** (`Vec<u64>`, reached through
///   [`ProcCtx::matrix_ctx`]), carrying the `O(p)`-sized envelopes of the
///   in-context communication-matrix samplers.
///
/// The two planes let a single job run *all* of Algorithm 1 — matrix
/// sampling and data exchange — on one executor while the meters still
/// attribute the traffic per phase (see [`crate::MachineMetrics`]).
pub struct ProcCtx<T> {
    comm: Communicator<T>,
    words: Communicator<u64>,
    rng: Pcg64,
    seeds: SeedSequence,
}

impl<T: Send> ProcCtx<T> {
    /// This processor's id in `0..p`.
    #[inline]
    pub fn id(&self) -> usize {
        self.comm.id()
    }

    /// The number of processors `p`.
    #[inline]
    pub fn procs(&self) -> usize {
        self.comm.procs()
    }

    /// Shared access to the communicator (metrics inspection).
    pub fn comm(&self) -> &Communicator<T> {
        &self.comm
    }

    /// Mutable access to the communicator (send / recv / barrier).
    pub fn comm_mut(&mut self) -> &mut Communicator<T> {
        &mut self.comm
    }

    /// This processor's private random stream (derived from the machine's
    /// master seed and the processor id, so runs are reproducible regardless
    /// of scheduling).
    pub fn rng(&mut self) -> &mut Pcg64 {
        &mut self.rng
    }

    /// The machine's seed sequence, for deriving additional named streams
    /// (e.g. one for matrix sampling, one for local shuffles).
    pub fn seeds(&self) -> &SeedSequence {
        &self.seeds
    }

    /// Convenience: marks the start of a superstep (metering) and returns a
    /// mutable borrow of the communicator for its communication phase.
    pub fn superstep(&mut self) -> &mut Communicator<T> {
        self.comm.begin_superstep();
        &mut self.comm
    }

    /// Borrows the word plane as a [`MatrixCtx`] — the view the in-context
    /// communication-matrix samplers of `cgp-matrix` run against.  The word
    /// plane shares the machine's barrier and abort flag with the data
    /// plane, but its traffic is metered separately (per-phase attribution).
    pub fn matrix_ctx(&mut self) -> MatrixCtx<'_> {
        MatrixCtx {
            words: &mut self.words,
            seeds: &self.seeds,
        }
    }

    /// Starts a new job on both planes (resident pool): moves both
    /// generation fences to the coordinator-assigned stamp and discards
    /// local leftovers.
    pub(crate) fn begin_job(&mut self, generation: u64) {
        self.comm.begin_job(generation);
        self.words.begin_job(generation);
    }

    /// Per-job metrics of both planes (data plane, word plane), taken and
    /// reset — the resident pool's per-job metering.
    pub(crate) fn take_metrics(&mut self) -> (ProcMetrics, ProcMetrics) {
        (self.comm.take_metrics(), self.words.take_metrics())
    }

    /// Consumes the context, returning the metrics of both planes (data
    /// plane, word plane) — the one-shot machine's end-of-run collection.
    pub(crate) fn into_metrics(self) -> (ProcMetrics, ProcMetrics) {
        (self.comm.into_metrics(), self.words.into_metrics())
    }

    /// Clears every buffered message on both planes (pool recovery after a
    /// panicked job).
    pub(crate) fn clear_in_flight(&mut self) {
        self.comm.clear_in_flight();
        self.words.clear_in_flight();
    }
}

/// The word plane of one virtual processor, as seen by the in-context
/// communication-matrix samplers (`cgp_matrix::sample_*_ctx`): a
/// `Vec<u64>`-typed communicator plus the machine's seed sequence.
///
/// Obtained from [`ProcCtx::matrix_ctx`] inside a running job.  Word-plane
/// traffic is metered into [`crate::MachineMetrics::matrix_plane`], so a
/// fused job's matrix phase stays separately attributable from its data
/// exchange.
pub struct MatrixCtx<'a> {
    words: &'a mut Communicator<u64>,
    seeds: &'a SeedSequence,
}

impl MatrixCtx<'_> {
    /// This processor's id in `0..p`.
    #[inline]
    pub fn id(&self) -> usize {
        self.words.id()
    }

    /// The number of processors `p`.
    #[inline]
    pub fn procs(&self) -> usize {
        self.words.procs()
    }

    /// The machine's seed sequence.
    pub fn seeds(&self) -> &SeedSequence {
        self.seeds
    }

    /// Mutable access to the word-plane communicator (send / recv /
    /// all-to-all of `Vec<u64>` payloads).
    pub fn comm_mut(&mut self) -> &mut Communicator<u64> {
        self.words
    }

    /// Marks the start of a matrix-phase round (word-plane superstep
    /// metering) and returns the communicator for its communication.
    pub fn superstep(&mut self) -> &mut Communicator<u64> {
        self.words.begin_superstep();
        self.words
    }

    /// This processor's matrix-sampling stream, derived **fresh from the
    /// machine seed** on every call (`proc_stream(id)` — exactly the stream
    /// a one-shot machine hands the processor as its default).  Deriving
    /// per call rather than using the resident context's advancing
    /// [`ProcCtx::rng`] is what makes a sampled matrix a pure function of
    /// the machine seed on *every* substrate.
    pub fn sampling_rng(&self) -> Pcg64 {
        self.seeds.proc_stream(self.id())
    }
}

/// The transport fabric and per-processor contexts of one machine:
/// everything that is built once per `CgmMachine::run` call, and once per
/// *lifetime* for a [`crate::ResidentCgm`] worker pool.
pub(crate) struct Fabric<T> {
    pub(crate) contexts: Vec<ProcCtx<T>>,
    pub(crate) barrier: Arc<SuperstepBarrier>,
    pub(crate) abort: Arc<AbortFlag>,
}

/// Opens both transport planes on the configured [`TransportKind`] and
/// wires them into per-processor contexts.  Fallible because a transport
/// may have real setup work to do (spawning mailbox processes, codec
/// lookup); the thread transport never fails.
pub(crate) fn build_fabric<T: Send + 'static>(config: &CgmConfig) -> Result<Fabric<T>, CgmError> {
    let wires = config.transport.open_fabric::<T>(config.procs)?;
    Ok(build_fabric_on(config, wires))
}

/// Wires already-opened transport planes — from any [`crate::transport::Transport`]
/// implementation, not just the built-in kinds — into the shared
/// barrier/abort pair and one [`ProcCtx`] per processor.
pub(crate) fn build_fabric_on<T: Send + 'static>(
    config: &CgmConfig,
    wires: FabricWires<T>,
) -> Fabric<T> {
    crate::diag::note_fabric_build();
    let p = config.procs;
    assert_eq!(
        wires.data.len(),
        p,
        "transport opened a wrong-sized data plane"
    );
    assert_eq!(
        wires.words.len(),
        p,
        "transport opened a wrong-sized word plane"
    );
    let seeds = SeedSequence::new(config.seed);
    let barrier = Arc::new(SuperstepBarrier::new(p));
    let abort = Arc::new(AbortFlag::new());

    let contexts: Vec<ProcCtx<T>> = wires
        .data
        .into_iter()
        .zip(wires.words)
        .enumerate()
        .map(|(id, (data, words))| ProcCtx {
            comm: Communicator::new(id, p, data, Arc::clone(&barrier), Arc::clone(&abort)),
            words: Communicator::new(id, p, words, Arc::clone(&barrier), Arc::clone(&abort)),
            rng: seeds.proc_stream(id),
            seeds,
        })
        .collect();

    Fabric {
        contexts,
        barrier,
        abort,
    }
}

/// Attributes a run's panics to the virtual processor that caused them and
/// re-raises a single panic naming it.  Secondary unwinds (processors the
/// abort protocol woke up) are skipped: only the root cause is reported.
pub(crate) fn attribute_panics(
    panics: &[(usize, Box<dyn std::any::Any + Send>)],
) -> (usize, String) {
    match panics.iter().find(|(_, p)| !p.is::<AbortPanic>()) {
        Some((proc, payload)) => (*proc, panic_message(payload.as_ref())),
        // Only secondary unwinds were collected (the primary processor's own
        // report was lost); the payloads still carry the culprit's id.
        None => {
            let (proc, payload) = panics.first().expect("at least one panic was collected");
            let culprit = payload
                .downcast_ref::<AbortPanic>()
                .map_or(*proc, |a| a.culprit);
            (culprit, panic_message(payload.as_ref()))
        }
    }
}

pub(crate) fn raise_attributed_panic(panics: Vec<(usize, Box<dyn std::any::Any + Send>)>) -> ! {
    let (proc, message) = attribute_panics(&panics);
    panic!("virtual processor {proc} panicked: {message}");
}

/// The result of running an algorithm on the machine: per-processor return
/// values plus the metered communication behaviour.
#[derive(Debug)]
pub struct RunOutcome<R> {
    results: Vec<R>,
    metrics: MachineMetrics,
}

impl<R> RunOutcome<R> {
    /// The per-processor return values, indexed by processor id.
    pub fn results(&self) -> &[R] {
        &self.results
    }

    /// Consumes the outcome, yielding the per-processor return values.
    pub fn into_results(self) -> Vec<R> {
        self.results
    }

    /// The metered communication behaviour of the run.
    pub fn metrics(&self) -> &MachineMetrics {
        &self.metrics
    }

    /// Splits the outcome into results and metrics.
    pub fn into_parts(self) -> (Vec<R>, MachineMetrics) {
        (self.results, self.metrics)
    }

    pub(crate) fn from_parts(results: Vec<R>, metrics: MachineMetrics) -> Self {
        RunOutcome { results, metrics }
    }
}

/// What happened to one sub-job of a batched run
/// ([`CgmExecutor::try_run_batch`]).
///
/// A batch stops at its first failure: the failing sub-job is reported as
/// [`BatchJobOutcome::Failed`] and every later sub-job as
/// [`BatchJobOutcome::Skipped`] — its closure was **never invoked**, so any
/// state the caller staged for it (e.g. payload slots) is still intact and
/// the sub-job can be resubmitted unchanged.
#[derive(Debug)]
pub enum BatchJobOutcome<R> {
    /// The sub-job ran on every processor; results and per-sub-job metrics.
    Done(RunOutcome<R>),
    /// The sub-job panicked inside a virtual processor (the error names
    /// it).  Its inputs are lost, exactly as with a failed
    /// [`CgmExecutor::try_run_job`].
    Failed(CgmError),
    /// A preceding sub-job failed; this one was never started.
    Skipped,
}

/// Anything that can run one CGM job — a closure executed on every virtual
/// processor with [`ProcCtx`] semantics — and hand back the per-processor
/// results plus the metered communication.
///
/// Two implementations exist: [`CgmMachine`] (one-shot: spawns `p` OS
/// threads and builds the channel fabric *per call*) and
/// [`crate::ResidentCgm`] (a resident worker pool that spawns and wires up
/// once, then parks between jobs).  Algorithms written against this trait —
/// like the permutation engine in `cgp-core` — run unchanged on either,
/// which is what lets a session amortize startup across repeated calls
/// without forking the algorithm code.
///
/// Job closures must be `'static` (the resident pool hands them to
/// long-lived threads); shared inputs travel in `Arc`s, per-processor
/// inputs in `Arc<[Mutex<Option<_>>]>` slot vectors taken by id.
pub trait CgmExecutor<T: Send + 'static> {
    /// The machine configuration (processor count and master seed).
    fn config(&self) -> CgmConfig;

    /// Number of virtual processors.
    fn procs(&self) -> usize {
        self.config().procs
    }

    /// Runs `f` on every virtual processor and collects results (indexed by
    /// processor id) and metrics.  Panics inside a processor are propagated
    /// as a panic naming the processor that failed.
    fn run_job<R, F>(&mut self, f: F) -> RunOutcome<R>
    where
        R: Send + 'static,
        F: Fn(&mut ProcCtx<T>) -> R + Send + Sync + 'static,
    {
        match self.try_run_job(f) {
            Ok(outcome) => outcome,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fail-fast variant of [`CgmExecutor::run_job`]: a panicking job is
    /// reported as [`CgmError::ProcessorPanicked`] (naming the virtual
    /// processor whose code failed) instead of unwinding the caller.  On a
    /// [`crate::ResidentCgm`] the pool recovers its fabric before this
    /// returns, so the executor stays usable for subsequent jobs — the hook
    /// a multi-tenant scheduler needs to contain one bad job without losing
    /// the machine it ran on.
    fn try_run_job<R, F>(&mut self, f: F) -> Result<RunOutcome<R>, CgmError>
    where
        R: Send + 'static,
        F: Fn(&mut ProcCtx<T>) -> R + Send + Sync + 'static;

    /// Runs a **batch** of jobs back to back, stopping at the first failure
    /// (the failing sub-job is reported [`BatchJobOutcome::Failed`], every
    /// later one [`BatchJobOutcome::Skipped`] with its closure never
    /// invoked).  The default implementation loops
    /// [`CgmExecutor::try_run_job`]; [`crate::ResidentCgm`] overrides it
    /// with a fused dispatch that wakes its workers **once** for the whole
    /// batch — the wake/fence amortization a job-coalescing scheduler needs.
    ///
    /// Semantics are identical either way: each sub-job starts a fresh
    /// generation on the fabric, meters its own communication, and sees
    /// exactly the context state a solo [`CgmExecutor::try_run_job`] run
    /// would (derived random streams are per-call, so a batched sub-job
    /// produces byte-identical results to a solo run).  The outer `Err` is
    /// reserved for executor-level failures (e.g. a shut-down pool) where
    /// no sub-job outcome exists at all.
    fn try_run_batch<R, F>(&mut self, fs: Vec<F>) -> Result<Vec<BatchJobOutcome<R>>, CgmError>
    where
        R: Send + 'static,
        F: Fn(&mut ProcCtx<T>) -> R + Send + Sync + 'static,
    {
        let mut outcomes = Vec::with_capacity(fs.len());
        let mut failed = false;
        for f in fs {
            if failed {
                outcomes.push(BatchJobOutcome::Skipped);
                continue;
            }
            match self.try_run_job(f) {
                Ok(out) => outcomes.push(BatchJobOutcome::Done(out)),
                Err(e) => {
                    failed = true;
                    outcomes.push(BatchJobOutcome::Failed(e));
                }
            }
        }
        Ok(outcomes)
    }
}

impl<T: Send + 'static> CgmExecutor<T> for CgmMachine {
    fn config(&self) -> CgmConfig {
        self.config
    }

    fn try_run_job<R, F>(&mut self, f: F) -> Result<RunOutcome<R>, CgmError>
    where
        R: Send + 'static,
        F: Fn(&mut ProcCtx<T>) -> R + Send + Sync + 'static,
    {
        self.try_run(f)
    }
}

/// A virtual coarse grained machine with `p` processors.
///
/// Each call to [`CgmMachine::run`] spawns one OS thread per virtual
/// processor, wires up the all-pairs channels, hands every thread a
/// [`ProcCtx`] and waits for all of them to finish.
#[derive(Debug, Clone)]
pub struct CgmMachine {
    config: CgmConfig,
}

impl CgmMachine {
    /// Creates a machine from a configuration.
    pub fn new(config: CgmConfig) -> Self {
        CgmMachine { config }
    }

    /// Creates a machine with `procs` processors and seed `0`.
    pub fn with_procs(procs: usize) -> Self {
        CgmMachine::new(CgmConfig::new(procs))
    }

    /// The machine's configuration.
    pub fn config(&self) -> &CgmConfig {
        &self.config
    }

    /// Number of virtual processors.
    pub fn procs(&self) -> usize {
        self.config.procs
    }

    /// Runs `f` on every virtual processor concurrently and collects the
    /// results (indexed by processor id) and the metered communication.
    ///
    /// If any virtual processor panics, every peer is woken (the barrier is
    /// poisoned and blocked receives abort), all threads are joined, and a
    /// single panic naming the processor that failed — `virtual processor i
    /// panicked: <message>` — is raised on the caller.  Peers that unwound
    /// only because the dying processor aborted them are not blamed.
    pub fn run<T, R, F>(&self, f: F) -> RunOutcome<R>
    where
        T: Send + 'static,
        R: Send,
        F: Fn(&mut ProcCtx<T>) -> R + Sync,
    {
        match self.try_run(f) {
            Ok(outcome) => outcome,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fail-fast variant of [`CgmMachine::run`]: a panicking job is reported
    /// as [`CgmError::ProcessorPanicked`] (naming the virtual processor
    /// whose code failed, exactly as the panic of `run` would) instead of
    /// unwinding the caller.  All threads are joined either way, so the
    /// error is returned only after the machine has fully wound down.
    pub fn try_run<T, R, F>(&self, f: F) -> Result<RunOutcome<R>, CgmError>
    where
        T: Send + 'static,
        R: Send,
        F: Fn(&mut ProcCtx<T>) -> R + Sync,
    {
        let p = self.config.procs;
        let Fabric {
            mut contexts,
            barrier,
            abort,
        } = build_fabric::<T>(&self.config)?;

        // One processor's deposited outcome: the result plus the per-plane
        // metrics pair (data plane, word plane), or the panic payload.
        type ProcSlot<R> = Option<std::thread::Result<(R, (ProcMetrics, ProcMetrics))>>;
        let started = Instant::now();
        let f = &f;
        let mut slots: Vec<ProcSlot<R>> = (0..p).map(|_| None).collect();

        crossbeam_utils::thread::scope(|scope| {
            let handles: Vec<_> = contexts
                .drain(..)
                .map(|mut ctx| {
                    let barrier = Arc::clone(&barrier);
                    let abort = Arc::clone(&abort);
                    crate::diag::note_thread_spawn();
                    scope.spawn(move |_| {
                        let id = ctx.id();
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut ctx)));
                        match outcome {
                            Ok(result) => (result, ctx.into_metrics()),
                            Err(payload) => {
                                // Root-cause panic: wake peers parked at the
                                // barrier or in a receive, then unwind this
                                // thread with the original payload.
                                if !payload.is::<AbortPanic>() {
                                    abort.trigger(id);
                                    barrier.poison(id);
                                }
                                std::panic::resume_unwind(payload);
                            }
                        }
                    })
                })
                .collect();
            for (slot, handle) in slots.iter_mut().zip(handles) {
                *slot = Some(handle.join());
            }
        })
        .expect("the CGM scope itself never panics");

        let elapsed = started.elapsed();
        let mut results = Vec::with_capacity(p);
        let mut per_proc = Vec::with_capacity(p);
        let mut matrix_plane = Vec::with_capacity(p);
        let mut panics: Vec<(usize, Box<dyn std::any::Any + Send>)> = Vec::new();
        for (id, slot) in slots.into_iter().enumerate() {
            match slot.expect("every processor slot is filled") {
                Ok((r, (data, words))) => {
                    results.push(r);
                    per_proc.push(data);
                    matrix_plane.push(words);
                }
                Err(payload) => panics.push((id, payload)),
            }
        }
        if !panics.is_empty() {
            let (proc, message) = attribute_panics(&panics);
            return Err(CgmError::ProcessorPanicked { proc, message });
        }

        Ok(RunOutcome {
            results,
            metrics: MachineMetrics {
                per_proc,
                matrix_plane,
                elapsed,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_processor_runs() {
        let machine = CgmMachine::with_procs(1);
        let out = machine.run(|ctx: &mut ProcCtx<u64>| ctx.id() + ctx.procs());
        assert_eq!(out.into_results(), vec![1]);
    }

    #[test]
    fn results_are_indexed_by_processor() {
        let machine = CgmMachine::with_procs(8);
        let out = machine.run(|ctx: &mut ProcCtx<u64>| ctx.id() * 2);
        assert_eq!(
            out.into_results(),
            (0..8).map(|i| i * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn per_processor_rngs_are_reproducible_and_distinct() {
        use cgp_rng::RandomSource;
        let machine = CgmMachine::new(CgmConfig::new(4).with_seed(123));
        let run1 = machine
            .run(|ctx: &mut ProcCtx<u64>| ctx.rng().next_u64())
            .into_results();
        let run2 = machine
            .run(|ctx: &mut ProcCtx<u64>| ctx.rng().next_u64())
            .into_results();
        assert_eq!(run1, run2, "same seed, same per-processor draws");
        let distinct: std::collections::HashSet<_> = run1.iter().collect();
        assert_eq!(distinct.len(), 4, "processors draw from distinct streams");
    }

    #[test]
    fn different_seeds_change_the_draws() {
        use cgp_rng::RandomSource;
        let a = CgmMachine::new(CgmConfig::new(2).with_seed(1))
            .run(|ctx: &mut ProcCtx<u64>| ctx.rng().next_u64())
            .into_results();
        let b = CgmMachine::new(CgmConfig::new(2).with_seed(2))
            .run(|ctx: &mut ProcCtx<u64>| ctx.rng().next_u64())
            .into_results();
        assert_ne!(a, b);
    }

    #[test]
    fn barrier_synchronises_supersteps() {
        // Every processor alternates "write then barrier then read"; with a
        // correct barrier the reads always observe all writes of the round.
        use parking_lot::Mutex;
        let p = 6;
        let log = Mutex::new(vec![0u32; p]);
        let machine = CgmMachine::with_procs(p);
        machine.run(|ctx: &mut ProcCtx<u64>| {
            for round in 1..=5u32 {
                log.lock()[ctx.id()] = round;
                ctx.comm_mut().barrier();
                let snapshot = log.lock().clone();
                assert!(
                    snapshot.iter().all(|&r| r >= round),
                    "processor {} observed {:?} in round {round}",
                    ctx.id(),
                    snapshot
                );
                ctx.comm_mut().barrier();
            }
        });
    }

    #[test]
    fn elapsed_time_is_recorded() {
        let machine = CgmMachine::with_procs(2);
        let out = machine
            .run(|_ctx: &mut ProcCtx<u64>| std::thread::sleep(std::time::Duration::from_millis(5)));
        assert!(out.metrics().elapsed.as_millis() >= 5);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn processor_panic_propagates() {
        let machine = CgmMachine::with_procs(3);
        machine.run(|ctx: &mut ProcCtx<u64>| {
            if ctx.id() == 1 {
                panic!("deliberate");
            }
        });
    }

    #[test]
    #[should_panic(expected = "virtual processor 2 panicked: deliberate")]
    fn processor_panic_names_the_culprit() {
        // Satellite regression: the re-raised panic must say *which* virtual
        // processor failed, not just repeat the raw payload.
        let machine = CgmMachine::with_procs(4);
        machine.run(|ctx: &mut ProcCtx<u64>| {
            if ctx.id() == 2 {
                panic!("deliberate");
            }
        });
    }

    #[test]
    fn try_run_reports_the_panic_as_a_value() {
        let machine = CgmMachine::with_procs(3);
        let err = machine
            .try_run(|ctx: &mut ProcCtx<u64>| {
                if ctx.id() == 1 {
                    panic!("contained");
                }
                ctx.comm_mut().barrier();
            })
            .unwrap_err();
        match err {
            CgmError::ProcessorPanicked { proc, ref message } => {
                assert_eq!(proc, 1);
                assert!(message.contains("contained"));
            }
            other => panic!("unexpected error: {other}"),
        }
        // The machine is per-call state only; the next run is unaffected.
        let out = machine.try_run(|ctx: &mut ProcCtx<u64>| ctx.id()).unwrap();
        assert_eq!(out.into_results(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "virtual processor 0 panicked")]
    fn panic_wakes_peers_parked_at_the_barrier() {
        // Latent-deadlock regression: with std::sync::Barrier a panic while
        // peers were parked in wait() slept forever.  The poisonable barrier
        // must wake them, and only the root cause may be blamed.
        let machine = CgmMachine::with_procs(3);
        machine.run(|ctx: &mut ProcCtx<u64>| {
            if ctx.id() == 0 {
                panic!("root cause");
            }
            ctx.comm_mut().barrier();
        });
    }

    #[test]
    #[should_panic(expected = "virtual processor 0 panicked")]
    fn panic_wakes_peers_blocked_in_recv() {
        let machine = CgmMachine::with_procs(3);
        machine.run(|ctx: &mut ProcCtx<u64>| {
            if ctx.id() == 0 {
                panic!("root cause");
            }
            // Processor 0 never sends; without the abort flag this receive
            // would wait forever on the open channel.
            let _ = ctx.comm_mut().recv(0, 0);
        });
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = CgmConfig::new(0);
    }

    #[test]
    fn try_new_reports_zero_processors_as_a_value() {
        assert_eq!(
            CgmConfig::try_new(0).unwrap_err(),
            crate::CgmError::NoProcessors
        );
        assert_eq!(CgmConfig::try_new(3).unwrap(), CgmConfig::new(3));
    }

    #[test]
    fn superstep_counter_advances() {
        let machine = CgmMachine::with_procs(2);
        let out = machine.run(|ctx: &mut ProcCtx<u64>| {
            for _ in 0..3 {
                ctx.superstep();
                ctx.comm_mut().barrier();
            }
        });
        for m in &out.metrics().per_proc {
            assert_eq!(m.supersteps, 3);
            assert_eq!(m.barriers, 3);
        }
    }

    #[test]
    fn many_virtual_processors_on_few_cores() {
        // The simulator must handle p far larger than the physical core count
        // (the paper goes up to 48; we go higher to be sure).
        let p = 64;
        let machine = CgmMachine::with_procs(p);
        let out = machine.run(move |ctx: &mut ProcCtx<u64>| {
            let outgoing: Vec<Vec<u64>> = (0..p).map(|j| vec![(ctx.id() + j) as u64]).collect();
            let incoming = ctx.comm_mut().all_to_all(outgoing, 0);
            incoming.iter().map(|v| v[0]).sum::<u64>()
        });
        let expected: u64 = (0..p as u64).map(|i| i + 3).sum();
        assert_eq!(out.results()[3], expected);
    }
}
