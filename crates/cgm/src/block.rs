//! Block distributions — how a distributed vector of `n` items is split over
//! `p` processors.
//!
//! The paper works with a vector `v` of `n` items distributed so that
//! processor `P_i` holds a block `B_i` of `m_i` items (equation (1):
//! `n = Σ m_i`), and a target vector `v'` distributed with block sizes
//! `m'_j`.  [`BlockDistribution`] captures exactly that: the sizes, the
//! prefix offsets, and the mapping between global indices and
//! (processor, local index) pairs.

use crate::error::CgmError;

/// The sizes `m_0, …, m_{p−1}` of the blocks of a distributed vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDistribution {
    sizes: Vec<u64>,
    /// Exclusive prefix sums: `offsets[i]` is the global index of the first
    /// item of block `i`; `offsets[p]` is the total `n`.
    offsets: Vec<u64>,
}

impl BlockDistribution {
    /// Builds a distribution from explicit block sizes.
    ///
    /// # Panics
    /// Panics if `sizes` is empty.
    pub fn from_sizes(sizes: Vec<u64>) -> Self {
        assert!(
            !sizes.is_empty(),
            "a block distribution needs at least one block"
        );
        let mut offsets = Vec::with_capacity(sizes.len() + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for &s in &sizes {
            acc = acc
                .checked_add(s)
                .expect("total number of items overflows u64");
            offsets.push(acc);
        }
        BlockDistribution { sizes, offsets }
    }

    /// Splits `n` items over `p` processors as evenly as possible: the first
    /// `n mod p` blocks get `⌈n/p⌉` items, the rest `⌊n/p⌋`.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn even(n: u64, p: usize) -> Self {
        assert!(p > 0, "a block distribution needs at least one block");
        let base = n / p as u64;
        let extra = (n % p as u64) as usize;
        let sizes = (0..p)
            .map(|i| if i < extra { base + 1 } else { base })
            .collect();
        Self::from_sizes(sizes)
    }

    /// The ideal PRO-model situation of the paper: `p` equal blocks of `m`
    /// items each (`n = p·m`).
    pub fn uniform(p: usize, m: u64) -> Self {
        assert!(p > 0, "a block distribution needs at least one block");
        Self::from_sizes(vec![m; p])
    }

    /// Number of blocks (= number of processors) `p`.
    #[inline]
    pub fn procs(&self) -> usize {
        self.sizes.len()
    }

    /// Total number of items `n = Σ m_i`.
    #[inline]
    pub fn total(&self) -> u64 {
        *self.offsets.last().expect("offsets always has p+1 entries")
    }

    /// The size `m_i` of block `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn size(&self, i: usize) -> u64 {
        self.sizes[i]
    }

    /// All block sizes as a slice.
    #[inline]
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// Global index of the first item of block `i`.
    #[inline]
    pub fn offset(&self, i: usize) -> u64 {
        self.offsets[i]
    }

    /// The half-open global index range `[offset, offset + size)` of block `i`.
    pub fn range(&self, i: usize) -> std::ops::Range<u64> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// Maps a global index to `(processor, local index)` by binary search.
    ///
    /// # Panics
    /// Panics if `global >= total()`.
    pub fn locate(&self, global: u64) -> (usize, u64) {
        assert!(global < self.total(), "global index {global} out of range");
        // partition_point returns the first offset strictly greater than
        // `global`; the owning block is the one before it.
        let proc = self.offsets.partition_point(|&o| o <= global) - 1;
        (proc, global - self.offsets[proc])
    }

    /// Checks that two distributions describe the same total number of items
    /// (the precondition of Problem 1: `Σ m_i = Σ m'_j`).
    pub fn check_compatible(&self, target: &BlockDistribution) -> Result<(), CgmError> {
        if self.total() == target.total() {
            Ok(())
        } else {
            Err(CgmError::BlockMismatch {
                source_total: self.total(),
                target_total: target.total(),
            })
        }
    }

    /// Largest block size — the balance measure used by the paper's "balance"
    /// criterion (no processor may be overloaded with data).
    pub fn max_size(&self) -> u64 {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// The imbalance factor `max_i m_i / (n / p)`; `1.0` means perfectly even.
    /// Returns `f64::INFINITY` for an empty distribution with a non-empty
    /// block, and `1.0` when `n == 0`.
    pub fn imbalance(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            return 1.0;
        }
        let ideal = n as f64 / self.procs() as f64;
        self.max_size() as f64 / ideal
    }

    /// Splits a flat vector into per-block vectors according to this
    /// distribution.  The vector length must equal [`Self::total`].
    pub fn split_vec<T>(&self, mut data: Vec<T>) -> Vec<Vec<T>> {
        assert_eq!(data.len() as u64, self.total(), "data length mismatch");
        let mut blocks = Vec::with_capacity(self.procs());
        // Split from the back so each split_off is O(size of tail block).
        for i in (0..self.procs()).rev() {
            let at = self.offsets[i] as usize;
            blocks.push(data.split_off(at));
        }
        blocks.reverse();
        blocks
    }

    /// Concatenates per-block vectors back into a flat vector, checking the
    /// sizes against this distribution.
    pub fn concat_vec<T>(&self, blocks: Vec<Vec<T>>) -> Vec<T> {
        assert_eq!(blocks.len(), self.procs(), "block count mismatch");
        let mut out = Vec::with_capacity(self.total() as usize);
        for (i, block) in blocks.into_iter().enumerate() {
            assert_eq!(
                block.len() as u64,
                self.sizes[i],
                "block {i} has wrong size"
            );
            out.extend(block);
        }
        out
    }

    /// Buffer-reusing variant of [`Self::split_vec`]: drains `data` into the
    /// per-block buffers of `blocks`, reusing their allocations.
    ///
    /// `blocks` is resized to `p` buffers (extra buffers are dropped, missing
    /// ones created empty); each buffer is cleared and then filled by moving
    /// items out of `data`, which is left empty with its capacity retained.
    /// Blocks are filled back to front so every drain removes the
    /// then-current tail of `data` — `O(n)` moves in total.
    pub fn split_vec_into<T>(&self, data: &mut Vec<T>, blocks: &mut Vec<Vec<T>>) {
        assert_eq!(data.len() as u64, self.total(), "data length mismatch");
        let p = self.procs();
        blocks.resize_with(p, Vec::new);
        for i in (0..p).rev() {
            let at = self.offsets[i] as usize;
            let buf = &mut blocks[i];
            buf.clear();
            buf.extend(data.drain(at..));
        }
    }

    /// Buffer-reusing variant of [`Self::concat_vec`]: drains the per-block
    /// buffers into `out` (cleared first, capacity reused), checking the
    /// sizes against this distribution.  The block buffers are left empty
    /// with their capacities retained, ready to be reused by a later
    /// [`Self::split_vec_into`].
    pub fn concat_vec_into<T>(&self, blocks: &mut [Vec<T>], out: &mut Vec<T>) {
        assert_eq!(blocks.len(), self.procs(), "block count mismatch");
        out.clear();
        out.reserve(self.total() as usize);
        for (i, block) in blocks.iter_mut().enumerate() {
            assert_eq!(
                block.len() as u64,
                self.sizes[i],
                "block {i} has wrong size"
            );
            out.append(block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_distribution_covers_everything() {
        let d = BlockDistribution::even(10, 3);
        assert_eq!(d.sizes(), &[4, 3, 3]);
        assert_eq!(d.total(), 10);
        assert_eq!(d.procs(), 3);
        assert_eq!(d.offset(0), 0);
        assert_eq!(d.offset(2), 7);
        assert_eq!(d.range(1), 4..7);
    }

    #[test]
    fn even_distribution_when_divisible() {
        let d = BlockDistribution::even(12, 4);
        assert_eq!(d.sizes(), &[3, 3, 3, 3]);
        assert_eq!(d.imbalance(), 1.0);
    }

    #[test]
    fn uniform_matches_paper_setting() {
        let d = BlockDistribution::uniform(6, 10);
        assert_eq!(d.total(), 60);
        assert_eq!(d.max_size(), 10);
        assert!((d.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn locate_roundtrip() {
        let d = BlockDistribution::from_sizes(vec![3, 0, 5, 2]);
        assert_eq!(d.locate(0), (0, 0));
        assert_eq!(d.locate(2), (0, 2));
        assert_eq!(d.locate(3), (2, 0)); // block 1 is empty
        assert_eq!(d.locate(7), (2, 4));
        assert_eq!(d.locate(8), (3, 0));
        assert_eq!(d.locate(9), (3, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_out_of_range_panics() {
        let d = BlockDistribution::even(10, 2);
        d.locate(10);
    }

    #[test]
    fn compatibility_check() {
        let a = BlockDistribution::even(10, 3);
        let b = BlockDistribution::from_sizes(vec![1, 2, 3, 4]);
        assert!(a.check_compatible(&b).is_ok());
        let c = BlockDistribution::even(11, 3);
        assert!(matches!(
            a.check_compatible(&c),
            Err(CgmError::BlockMismatch { .. })
        ));
    }

    #[test]
    fn imbalance_of_skewed_distribution() {
        let d = BlockDistribution::from_sizes(vec![10, 0, 0, 0, 0]);
        assert!((d.imbalance() - 5.0).abs() < 1e-12);
        let empty = BlockDistribution::from_sizes(vec![0, 0]);
        assert_eq!(empty.imbalance(), 1.0);
    }

    #[test]
    fn split_and_concat_roundtrip() {
        let d = BlockDistribution::from_sizes(vec![2, 0, 3, 1]);
        let data: Vec<u32> = (0..6).collect();
        let blocks = d.split_vec(data.clone());
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0], vec![0, 1]);
        assert_eq!(blocks[1], Vec::<u32>::new());
        assert_eq!(blocks[2], vec![2, 3, 4]);
        assert_eq!(blocks[3], vec![5]);
        assert_eq!(d.concat_vec(blocks), data);
    }

    #[test]
    fn split_into_and_concat_into_reuse_buffers() {
        let d = BlockDistribution::from_sizes(vec![2, 0, 3, 1]);
        let mut data: Vec<u32> = (0..6).collect();
        let original = data.clone();
        let data_capacity = data.capacity();

        let mut blocks: Vec<Vec<u32>> = Vec::new();
        d.split_vec_into(&mut data, &mut blocks);
        assert!(data.is_empty());
        assert_eq!(data.capacity(), data_capacity, "capacity is retained");
        assert_eq!(blocks, d.split_vec(original.clone()));

        d.concat_vec_into(&mut blocks, &mut data);
        assert_eq!(data, original);
        assert!(blocks.iter().all(|b| b.is_empty()), "blocks become shells");

        // Round two reuses the same shells without reallocating the 3-item
        // block (the largest one).
        let big_capacity = blocks[2].capacity();
        d.split_vec_into(&mut data, &mut blocks);
        assert_eq!(blocks[2].capacity(), big_capacity);
        d.concat_vec_into(&mut blocks, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn split_into_adjusts_buffer_count() {
        let d = BlockDistribution::from_sizes(vec![1, 2]);
        let mut data: Vec<u8> = vec![7, 8, 9];
        // Too many buffers: the extras are dropped.
        let mut blocks: Vec<Vec<u8>> = (0..5).map(|_| Vec::new()).collect();
        d.split_vec_into(&mut data, &mut blocks);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0], vec![7]);
        assert_eq!(blocks[1], vec![8, 9]);
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn concat_into_checks_sizes() {
        let d = BlockDistribution::from_sizes(vec![1, 1]);
        let mut blocks = vec![vec![1u8, 2], vec![3u8]];
        let mut out = Vec::new();
        d.concat_vec_into(&mut blocks, &mut out);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_sizes_panic() {
        BlockDistribution::from_sizes(vec![]);
    }

    #[test]
    fn zero_item_distribution() {
        let d = BlockDistribution::even(0, 4);
        assert_eq!(d.total(), 0);
        assert_eq!(d.sizes(), &[0, 0, 0, 0]);
        let blocks = d.split_vec(Vec::<u8>::new());
        assert_eq!(blocks.len(), 4);
    }
}
