//! Point-to-point communication between virtual processors.
//!
//! Each processor owns a [`Communicator`]: one [`TransportEndpoint`] for
//! its plane plus a small mailbox that re-orders messages by sender.
//! Semantics mirror what the paper's SSCRAP/MPI substrate provides:
//!
//! * messages between a fixed (sender, receiver) pair arrive in sending
//!   order;
//! * a receive names the sender and a tag and blocks until the matching
//!   message arrives;
//! * an **all-to-all exchange** ([`Communicator::all_to_all`]) realises the
//!   h-relation of one superstep: every processor hands over one outgoing
//!   vector per peer and receives one incoming vector per peer;
//! * every word and message is metered into [`ProcMetrics`].
//!
//! Self-sends never touch the transport: the payload is moved locally (but
//! still counted as volume, since the paper's accounting counts the data a
//! processor has to touch, not only what crosses the network).
//!
//! Everything below the envelope level — how an envelope physically reaches
//! the peer — is the transport's business ([`crate::transport`]): on the
//! default thread transport payloads are **moved, never cloned** (`send`
//! takes the `Vec<T>` by value, the envelope carries it through a channel,
//! `recv` hands the same allocation back), on the process transport they
//! are serialized through the wire codecs.  The meters count the moved
//! words all the same (`words_sent`/`words_received` are payload lengths,
//! independent of the substrate), which is what makes the simulator's
//! volume figures comparable to the paper's bandwidth accounting; the
//! *extra* bytes a non-local substrate frames onto its medium are metered
//! separately as [`ProcMetrics::wire_bytes`].
//!
//! The communicator is also where the resident pool's **generation fence**
//! lives: outgoing envelopes are stamped, incoming envelopes from an older
//! job are dropped.  The transport contract (stamps survive the wire
//! unmodified — see [`crate::transport`]) is exactly what makes this work
//! on any substrate.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use crate::metrics::ProcMetrics;
use crate::sync::{abort_unwind, AbortFlag, BarrierWait, SuperstepBarrier};
use crate::transport::{Envelope, TransportEndpoint, TransportRecv};

/// How often a blocked receive re-checks the machine's abort flag.  A
/// message arriving during the wait wakes the receiver immediately — the
/// interval only bounds how long a processor keeps sleeping after a *peer*
/// panicked, so it trades shutdown latency (not throughput) for wakeups.
const ABORT_POLL: Duration = Duration::from_millis(1);

/// The per-processor communication endpoint.
pub struct Communicator<T> {
    id: usize,
    procs: usize,
    /// This processor's wire on its plane; everything that physically moves
    /// between processors goes through it.
    endpoint: Box<dyn TransportEndpoint<T>>,
    /// Messages that arrived but have not been asked for yet, grouped by
    /// sender (per-sender FIFO order is preserved by the transport).
    mailbox: Vec<VecDeque<Envelope<T>>>,
    /// Payloads this processor sent to itself, by tag order.
    self_queue: VecDeque<Envelope<T>>,
    /// Current job generation (resident pool): outgoing envelopes are
    /// stamped with it and incoming envelopes from an older generation —
    /// sent during an earlier job but never received, which is legal there —
    /// are dropped instead of being delivered into the wrong job.  The
    /// one-shot machine stays at generation `0` for its whole (single-job)
    /// lifetime, so the stamp never changes behaviour there.
    generation: u64,
    barrier: Arc<SuperstepBarrier>,
    abort: Arc<AbortFlag>,
    metrics: ProcMetrics,
    /// Endpoint wire bytes already attributed to earlier metric takes (the
    /// endpoint counter is cumulative; per-job metering needs deltas).
    wire_taken: u64,
}

impl<T: Send> Communicator<T> {
    pub(crate) fn new(
        id: usize,
        procs: usize,
        endpoint: Box<dyn TransportEndpoint<T>>,
        barrier: Arc<SuperstepBarrier>,
        abort: Arc<AbortFlag>,
    ) -> Self {
        Communicator {
            id,
            procs,
            endpoint,
            mailbox: (0..procs).map(|_| VecDeque::new()).collect(),
            self_queue: VecDeque::new(),
            generation: 0,
            barrier,
            abort,
            metrics: ProcMetrics::default(),
            wire_taken: 0,
        }
    }

    /// Starts a new job on this endpoint (resident pool): moves to the
    /// coordinator-assigned `generation` so envelopes a finished job sent
    /// but never received cannot be mistaken for this job's messages, and
    /// discards the local leftovers (mailbox and self-queue — only this
    /// thread touches those).  Stale envelopes still in flight on the
    /// transport are dropped lazily when a receive encounters them, so this
    /// costs `O(1)` when the previous job consumed everything.
    ///
    /// The generation is a coordinator *stamp*, not a local counter: after
    /// an aborted batch the workers may have attempted different numbers of
    /// sub-jobs, and counting `begin_job` calls locally would leave them
    /// disagreeing on the generation forever — every later envelope dropped
    /// by the fence, every receive parked with no abort raised.
    pub(crate) fn begin_job(&mut self, generation: u64) {
        self.generation = generation;
        for q in &mut self.mailbox {
            q.clear();
        }
        self.self_queue.clear();
    }

    /// This processor's id in `0..p`.
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The number of processors `p` of the machine.
    #[inline]
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Sends `payload` to processor `to` under `tag`.
    ///
    /// Sending to oneself is allowed and does not use the transport.
    ///
    /// # Panics
    /// Panics if `to` is out of range or the destination processor has
    /// already terminated, which indicates a bug in the algorithm's
    /// superstep structure.
    pub fn send(&mut self, to: usize, tag: u64, payload: Vec<T>) {
        assert!(to < self.procs, "send to processor {to} of {}", self.procs);
        self.metrics.words_sent += payload.len() as u64;
        if to == self.id {
            self.self_queue.push_back(Envelope {
                from: self.id,
                tag,
                generation: self.generation,
                payload,
            });
            return;
        }
        self.metrics.messages_sent += 1;
        self.endpoint
            .send(
                to,
                Envelope {
                    from: self.id,
                    tag,
                    generation: self.generation,
                    payload,
                },
            )
            .unwrap_or_else(|_| panic!("processor {to} terminated before receiving a message"));
    }

    /// Receives the next message from processor `from` with the given `tag`,
    /// blocking until it arrives.
    ///
    /// # Panics
    /// Panics if the tag of the next message from `from` does not match
    /// `tag` (the superstep structure of every algorithm in this workspace
    /// guarantees matched tags), or if `from` terminated without sending.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<T> {
        assert!(
            from < self.procs,
            "recv from processor {from} of {}",
            self.procs
        );
        let envelope = if from == self.id {
            self.self_queue
                .pop_front()
                .expect("processor tried to receive a self-message it never sent")
        } else {
            self.take_from(from)
        };
        assert_eq!(
            envelope.tag, tag,
            "processor {}: message from {} carries tag {} but {} was expected",
            self.id, from, envelope.tag, tag
        );
        self.metrics.messages_received += u64::from(from != self.id);
        self.metrics.words_received += envelope.payload.len() as u64;
        envelope.payload
    }

    /// Pulls messages off the endpoint until one from `from` is available.
    ///
    /// The wait is abort-aware: if a peer panics while this processor is
    /// parked, the machine's abort flag is raised and this receive unwinds
    /// (with the secondary [`crate::sync::AbortPanic`] payload) instead of
    /// sleeping forever on a message that will never be sent.
    fn take_from(&mut self, from: usize) -> Envelope<T> {
        if let Some(env) = self.mailbox[from].pop_front() {
            return env;
        }
        loop {
            if let Some(culprit) = self.abort.culprit() {
                abort_unwind(culprit);
            }
            let env = match self.endpoint.recv_timeout(ABORT_POLL) {
                TransportRecv::Envelope(env) => env,
                TransportRecv::TimedOut => continue,
                TransportRecv::Closed => panic!(
                    "all peers terminated while processor {} waited for a message from {from}",
                    self.id
                ),
            };
            if env.generation != self.generation {
                // Sent during an earlier job of the resident pool and never
                // received there; it must not leak into this job.
                continue;
            }
            if env.from == from {
                return env;
            }
            self.mailbox[env.from].push_back(env);
        }
    }

    /// Performs one all-to-all exchange (the h-relation of a superstep).
    ///
    /// `outgoing[j]` is the payload destined for processor `j` (the entry for
    /// this processor itself is delivered locally).  Returns `incoming` where
    /// `incoming[i]` is the payload received from processor `i`.
    ///
    /// # Panics
    /// Panics if `outgoing.len() != p`.
    pub fn all_to_all(&mut self, outgoing: Vec<Vec<T>>, tag: u64) -> Vec<Vec<T>> {
        assert_eq!(
            outgoing.len(),
            self.procs,
            "all_to_all needs one vector per processor"
        );
        // Send phase: everything leaves before anything is awaited, so the
        // exchange cannot deadlock regardless of processor ordering (the
        // transport contract guarantees sends never wait on receivers).
        for (to, payload) in outgoing.into_iter().enumerate() {
            self.send(to, tag, payload);
        }
        // Receive phase: collect one message from every peer.
        (0..self.procs).map(|from| self.recv(from, tag)).collect()
    }

    /// Barrier synchronisation with all other processors, marking the end of
    /// a superstep.
    ///
    /// If a peer panics while this processor is parked at the barrier, the
    /// barrier is poisoned and this call unwinds instead of deadlocking.
    pub fn barrier(&mut self) {
        self.metrics.barriers += 1;
        if let BarrierWait::Poisoned(culprit) = self.barrier.wait() {
            abort_unwind(culprit);
        }
    }

    /// Marks the beginning of a new superstep (metering only; the barrier at
    /// the end of the previous superstep provides the synchronisation).
    pub fn begin_superstep(&mut self) {
        self.metrics.supersteps += 1;
    }

    /// The metrics accumulated by this communicator so far.
    ///
    /// Note: [`ProcMetrics::wire_bytes`] is settled from the transport
    /// endpoint when the metrics are *taken* (end of run / end of job), not
    /// continuously — mid-job reads through this accessor see it as `0`.
    pub fn metrics(&self) -> &ProcMetrics {
        &self.metrics
    }

    /// Consumes the communicator, returning its metrics (called by the
    /// machine after the processor function returns).
    pub(crate) fn into_metrics(mut self) -> ProcMetrics {
        self.metrics.wire_bytes = self.endpoint.wire_bytes() - self.wire_taken;
        self.metrics
    }

    /// Hands out the metrics accumulated since the last take, resetting the
    /// counters — the per-job metering of the resident pool.
    pub(crate) fn take_metrics(&mut self) -> ProcMetrics {
        let framed = self.endpoint.wire_bytes();
        self.metrics.wire_bytes = framed - self.wire_taken;
        self.wire_taken = framed;
        std::mem::take(&mut self.metrics)
    }

    /// Clears every buffered message (mailbox, self-queue and anything still
    /// in flight on the transport).  Resident-pool recovery: after a job
    /// panics, partially-delivered envelopes of the dead job must not leak
    /// into the next one.  Only sound while all peers are parked between
    /// jobs — which is exactly the precondition of the transport's drain
    /// contract.
    pub(crate) fn clear_in_flight(&mut self) {
        for q in &mut self.mailbox {
            q.clear();
        }
        self.self_queue.clear();
        self.endpoint.drain();
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::{CgmConfig, CgmMachine};

    #[test]
    fn ring_exchange_delivers_in_order() {
        let machine = CgmMachine::new(CgmConfig::new(5));
        let results = machine
            .run(|ctx| {
                let p = ctx.procs();
                let next = (ctx.id() + 1) % p;
                let prev = (ctx.id() + p - 1) % p;
                // Two messages with different tags; they must arrive in order.
                let id = ctx.id();
                ctx.comm_mut().send(next, 1, vec![id as u64]);
                ctx.comm_mut().send(next, 2, vec![(id * 10) as u64]);
                let a = ctx.comm_mut().recv(prev, 1);
                let b = ctx.comm_mut().recv(prev, 2);
                (a[0], b[0])
            })
            .into_results();
        for (i, &(a, b)) in results.iter().enumerate() {
            let prev = (i + 5 - 1) % 5;
            assert_eq!(a, prev as u64);
            assert_eq!(b, (prev * 10) as u64);
        }
    }

    #[test]
    fn all_to_all_transposes() {
        // Processor i sends value i*p + j to processor j; afterwards each j
        // holds the j-th "column".
        let p = 4;
        let machine = CgmMachine::new(CgmConfig::new(p));
        let results = machine
            .run(move |ctx| {
                let i = ctx.id();
                let outgoing: Vec<Vec<u64>> = (0..p).map(|j| vec![(i * p + j) as u64]).collect();
                let incoming = ctx.comm_mut().all_to_all(outgoing, 0);
                incoming.into_iter().map(|v| v[0]).collect::<Vec<u64>>()
            })
            .into_results();
        for (j, row) in results.iter().enumerate() {
            let expected: Vec<u64> = (0..p).map(|i| (i * p + j) as u64).collect();
            assert_eq!(row, &expected);
        }
    }

    #[test]
    fn self_send_is_local_but_counted() {
        let machine = CgmMachine::new(CgmConfig::new(1));
        let outcome = machine.run(|ctx| {
            ctx.comm_mut().send(0, 7, vec![1u64, 2, 3]);
            ctx.comm_mut().recv(0, 7)
        });
        assert_eq!(outcome.results()[0], vec![1, 2, 3]);
        let metrics = &outcome.metrics().per_proc[0];
        assert_eq!(
            metrics.messages_sent, 0,
            "self-sends do not use the network"
        );
        assert_eq!(metrics.words_sent, 3, "but their volume is accounted");
        assert_eq!(metrics.words_received, 3);
    }

    #[test]
    fn out_of_order_senders_are_buffered() {
        // Processor 0 receives from 2 first even though 1's message may
        // arrive earlier; the mailbox must buffer it.
        let machine = CgmMachine::new(CgmConfig::new(3));
        let results = machine
            .run(|ctx| match ctx.id() {
                0 => {
                    let from2 = ctx.comm_mut().recv(2, 0);
                    let from1 = ctx.comm_mut().recv(1, 0);
                    from2[0] * 100 + from1[0]
                }
                id => {
                    ctx.comm_mut().send(0, 0, vec![id as u64]);
                    0
                }
            })
            .into_results();
        assert_eq!(results[0], 201);
    }

    #[test]
    fn metrics_count_messages_and_words() {
        let machine = CgmMachine::new(CgmConfig::new(2));
        let outcome = machine.run(|ctx| {
            let other = 1 - ctx.id();
            ctx.comm_mut().send(other, 0, vec![0u64; 10]);
            let _ = ctx.comm_mut().recv(other, 0);
            ctx.comm_mut().barrier();
        });
        for m in &outcome.metrics().per_proc {
            assert_eq!(m.messages_sent, 1);
            assert_eq!(m.words_sent, 10);
            assert_eq!(m.messages_received, 1);
            assert_eq!(m.words_received, 10);
            assert_eq!(m.barriers, 1);
            assert_eq!(m.wire_bytes, 0, "the thread transport frames nothing");
        }
    }

    #[test]
    #[should_panic(expected = "one vector per processor")]
    fn all_to_all_wrong_arity_panics() {
        let machine = CgmMachine::new(CgmConfig::new(2));
        machine.run(|ctx| {
            let _ = ctx.comm_mut().all_to_all(vec![vec![1u64]], 0);
        });
    }
}
