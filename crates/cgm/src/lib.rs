//! # cgp-cgm — a coarse grained multicomputer simulator
//!
//! Gustedt's paper evaluates its algorithms inside SSCRAP, a C++/MPI runtime
//! for coarse grained (BSP/CGM/PRO) algorithms, running on clusters and
//! ccNUMA machines with up to 48 processors.  That substrate is not
//! available here, so this crate builds the closest equivalent that exercises
//! the same code paths:
//!
//! * **`p` virtual processors**, each an OS thread with its own block of
//!   data, its own random stream, and its own metrics counters;
//! * **point-to-point messages** over a pluggable [`transport`] layer, with
//!   the same semantics as MPI send/recv between supersteps (per-sender
//!   FIFO order, matched by sender id and tag) — in-process channels by
//!   default ([`TransportKind::Threads`]), per-processor mailbox child
//!   processes over Unix domain sockets as the multi-process substrate
//!   ([`TransportKind::Process`]);
//! * **supersteps** separated by barriers, so algorithms are expressed
//!   exactly as in the BSP/CGM/PRO papers;
//! * **metering** of every word sent and received, every message, every
//!   barrier, and the per-processor wall-clock time — these are the
//!   quantities the PRO model (and Theorems 1 and 2 of the paper) make
//!   claims about, and they are independent of the host machine's actual
//!   core count.
//!
//! The simulator runs real threads, so wall-clock scaling trends are
//! observable too (experiment E3), but the *primary* reproduction currency is
//! the metered work/communication per processor, which is exact.
//!
//! Two execution substrates share the same [`ProcCtx`] semantics (abstracted
//! by [`CgmExecutor`]): the one-shot [`CgmMachine`], which spawns its
//! threads and channel fabric per `run` call, and the resident
//! [`ResidentCgm`] worker pool, which spawns and wires up once and parks
//! its workers between jobs — the substrate for steady-state services that
//! run many jobs back to back (see the [`pool`] module docs).
//!
//! Every fabric carries **two typed transport planes** over one barrier: the
//! data plane (`Vec<T>` payloads, [`ProcCtx::comm_mut`]) and the word plane
//! (`Vec<u64>` envelopes, [`ProcCtx::matrix_ctx`] → [`MatrixCtx`]).  The
//! word plane is what lets a single job fuse the `O(p)`-sized
//! communication-matrix phase of Algorithm 1 with its `O(m)` data exchange
//! — one run, one executor, still separately metered per phase
//! ([`MachineMetrics::matrix_plane`]).  Whether any of that startup happens
//! at all is observable through the [`diag`] counters.
//!
//! ## Quick example
//!
//! ```
//! use cgp_cgm::{CgmConfig, CgmMachine};
//!
//! // 4 virtual processors; each sends its id to the next one around a ring.
//! let machine = CgmMachine::new(CgmConfig::new(4).with_seed(7));
//! let outcome = machine.run(|ctx| {
//!     let id = ctx.id() as u64;
//!     let next = (ctx.id() + 1) % ctx.procs();
//!     let prev = (ctx.id() + ctx.procs() - 1) % ctx.procs();
//!     ctx.comm_mut().send(next, 0, vec![id]);
//!     let got = ctx.comm_mut().recv(prev, 0);
//!     got[0]
//! });
//! let values = outcome.into_results();
//! assert_eq!(values, vec![3, 0, 1, 2]);
//! ```

pub mod block;
pub mod comm;
pub mod diag;
pub mod error;
pub mod machine;
pub mod metrics;
pub mod pool;
mod sync;
pub mod transport;

pub use block::BlockDistribution;
pub use comm::Communicator;
pub use error::CgmError;
pub use machine::{
    BatchJobOutcome, CgmConfig, CgmExecutor, CgmMachine, MatrixCtx, ProcCtx, RunOutcome,
};
pub use metrics::{CostModel, MachineMetrics, ProcMetrics};
pub use pool::ResidentCgm;
pub use transport::process::ProcessTransport;
pub use transport::wire::{register_wire, Wire};
pub use transport::{
    Envelope, FabricWires, ThreadTransport, Transport, TransportEndpoint, TransportKind,
    TransportRecv,
};
