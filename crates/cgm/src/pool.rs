//! The resident coarse grained machine: a worker pool that keeps the `p`
//! virtual processors alive across jobs.
//!
//! [`crate::CgmMachine::run`] pays the full startup bill on every call: `p` OS
//! thread spawns, `p` channel endpoints, `p²` sender handles and a fresh
//! barrier.  That is fine for a single permutation, but a service that
//! permutes on every request pays it over and over, dwarfing the `O(m)`
//! per-processor work bound for small and medium blocks.  [`ResidentCgm`]
//! is the amortized alternative, mirroring how SSCRAP (the paper's own
//! runtime) and modern PGAS runtimes keep a resident execution context
//! alive across supersteps instead of re-creating it per operation.
//!
//! # Parking / wakeup protocol
//!
//! * `ResidentCgm::new` builds the channel fabric **once** and spawns one
//!   worker thread per virtual processor.  Each worker owns its
//!   [`ProcCtx`] for the lifetime of the pool — so its private random
//!   stream (`ctx.rng()`) advances across jobs instead of restarting —
//!   and parks in a blocking receive on its private command channel.
//! * [`ResidentCgm::run`] wakes all workers with one type-erased job
//!   closure (an `Arc`, shared, no copy per worker).  Every worker runs the
//!   job against its resident context, then reports `(result, per-job
//!   metrics)` on a shared report channel and parks again.  The metrics
//!   counters are taken-and-reset per job, so each [`RunOutcome`] meters
//!   exactly one job, as with the one-shot machine.
//! * The caller blocks until all `p` reports are in — so a job borrows
//!   nothing from the pool beyond the call, and `run` needs only `&mut
//!   self`.
//! * Jobs are **generation-fenced**: every envelope is stamped with its
//!   job's generation, and receives drop envelopes from other jobs.  A
//!   job that legally completes without consuming everything sent to it
//!   (the one-shot machine drops such envelopes with its fabric) therefore
//!   cannot leak messages into the next job.  Generations are allocated by
//!   the coordinator and carried on each command — never counted locally
//!   on the workers — so the fences cannot drift apart even when an
//!   aborted batch leaves the workers having attempted different numbers
//!   of sub-jobs.
//!
//! # Panics do not poison the pool
//!
//! A panic inside a job is caught on the worker, the machine-wide abort
//! flag is raised and the barrier poisoned (waking peers parked in
//! `barrier()`/`recv`), and the failure is reported to the caller naming
//! the virtual processor that failed — [`ResidentCgm::try_run`] returns it
//! as [`CgmError::ProcessorPanicked`], [`ResidentCgm::run`] panics with the
//! same message.  Before either returns, the pool runs a recovery round:
//! every worker drains its in-flight envelopes and mailboxes, then the
//! barrier and abort flag are re-armed — so the *next* job starts on a
//! clean fabric.  Workers themselves never die with the job.
//!
//! # Shutdown
//!
//! [`ResidentCgm::shutdown`] (or dropping the pool) sends every worker a
//! shutdown command and joins the threads.  If a worker thread itself died
//! abnormally, the panic is propagated to the caller (except while already
//! unwinding).
//!
//! ```
//! use cgp_cgm::{CgmConfig, ResidentCgm};
//!
//! let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(4).with_seed(7));
//! for _ in 0..3 {
//!     // No thread spawn, no channel construction: workers are woken.
//!     let out = pool.run(|ctx| ctx.id() * 10);
//!     assert_eq!(out.results(), &[0, 10, 20, 30]);
//! }
//! pool.shutdown();
//! ```

use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam_channel::{unbounded, Receiver, Sender};

use crate::error::CgmError;
use crate::machine::{
    attribute_panics, build_fabric, build_fabric_on, raise_attributed_panic, BatchJobOutcome,
    CgmConfig, CgmExecutor, Fabric, ProcCtx, RunOutcome,
};
use crate::metrics::{MachineMetrics, ProcMetrics};
use crate::sync::{AbortFlag, AbortPanic, BarrierWait, SuperstepBarrier};
use crate::transport::Transport;
use std::time::Duration;

/// A type-erased per-processor job: the pool wraps the caller's typed
/// closure once and shares it with every worker through an `Arc`.
type JobFn<T> = dyn Fn(&mut ProcCtx<T>) -> Box<dyn Any + Send> + Send + Sync;

/// What one worker produced for one job: the type-erased result plus this
/// job's per-plane metrics (data plane, word plane) on success, the panic
/// payload on failure.
type WorkerOutcome = Result<(Box<dyn Any + Send>, (ProcMetrics, ProcMetrics)), Box<dyn Any + Send>>;

/// Per-job rendezvous between the workers and the coordinator.  Every
/// worker deposits its outcome into its own slot; only the **last** one to
/// finish signals `done` — so completing a job costs the coordinator a
/// single wakeup instead of `p`, which on few-core hosts is a measurable
/// share of the dispatch overhead the pool exists to amortize.
struct JobState {
    slots: Vec<Mutex<Option<WorkerOutcome>>>,
    remaining: AtomicUsize,
    done: Sender<()>,
}

/// What one worker produced for one **sub-job** of a batch: the outcome of
/// a solo job plus the worker's own wall-clock for the sub-job (the
/// coordinator can only time the batch as a whole, so per-sub-job elapsed
/// is the maximum of these self-timings).
type SubJobOutcome = Result<
    (
        Box<dyn Any + Send>,
        (ProcMetrics, ProcMetrics),
        std::time::Duration,
    ),
    Box<dyn Any + Send>,
>;

/// Per-batch rendezvous, mirroring [`JobState`]: every worker deposits the
/// prefix of sub-job outcomes it attempted (shorter than the batch when it
/// stopped at a failure), and the last worker to finish sends the single
/// completion signal.
struct BatchState {
    slots: Vec<Mutex<Option<Vec<SubJobOutcome>>>>,
    remaining: AtomicUsize,
    done: Sender<()>,
}

enum Command<T> {
    /// Run this job on the resident context under the given generation
    /// stamp, deposit the outcome, park.
    Job(Arc<JobFn<T>>, Arc<JobState>, u64),
    /// Run these jobs back to back (one wake for the whole batch; sub-job
    /// `k` runs under generation `base + k`), deposit the attempted prefix
    /// of outcomes, park.
    Batch(Arc<Vec<Box<JobFn<T>>>>, Arc<BatchState>, u64),
    /// Recovery round after a panicked job: drain in-flight messages and
    /// acknowledge on the carried channel.
    Reset(Sender<usize>),
    /// Leave the worker loop (pool shutdown).
    Shutdown,
}

/// A coarse grained machine whose `p` virtual processors are **resident**:
/// spawned once, wired up once, parked between jobs.
///
/// Accepts repeated [`run`](ResidentCgm::run) submissions with the same
/// [`ProcCtx`] semantics as [`crate::CgmMachine::run`], except that each
/// processor's private random stream persists across jobs (it advances
/// instead of restarting — derived streams via `ctx.seeds()` are
/// unaffected).  See the module docs for the protocol.
pub struct ResidentCgm<T: Send + 'static> {
    config: CgmConfig,
    commands: Vec<Sender<Command<T>>>,
    /// Job-completion signal: exactly one `()` arrives per submitted job,
    /// sent by whichever worker finishes last.
    done_rx: Receiver<()>,
    done_tx: Sender<()>,
    workers: Vec<Option<JoinHandle<()>>>,
    barrier: Arc<SuperstepBarrier>,
    abort: Arc<AbortFlag>,
    recoveries: u64,
    /// Next generation stamp to hand out.  Generations are allocated here,
    /// by the coordinator, and *set* (not counted) by the workers: after an
    /// aborted batch the workers have attempted different numbers of
    /// sub-jobs, so local counting would skew their fences apart for good —
    /// the machine would then silently drop every envelope and wedge, with
    /// no abort raised, on the next job that communicates.
    next_generation: u64,
}

impl<T: Send + 'static> ResidentCgm<T> {
    /// Spawns the resident workers for `config`.
    ///
    /// # Panics
    /// Panics if `config.procs == 0` (only reachable by building the config
    /// literal by hand); [`ResidentCgm::try_new`] reports it as a value.
    pub fn new(config: CgmConfig) -> Self {
        ResidentCgm::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: spawns the workers, or returns
    /// [`CgmError::NoProcessors`] for an empty machine /
    /// [`CgmError::WorkerSpawnFailed`] when the OS refuses a thread (any
    /// workers spawned before the failure are shut down and joined first) /
    /// a transport error when the configured fabric cannot be opened.
    pub fn try_new(config: CgmConfig) -> Result<Self, CgmError> {
        if config.procs == 0 {
            return Err(CgmError::NoProcessors);
        }
        let fabric = build_fabric::<T>(&config)?;
        ResidentCgm::from_fabric(config, fabric)
    }

    /// Like [`ResidentCgm::try_new`], but opens the fabric on an explicitly
    /// provided [`Transport`] implementation instead of the built-in kind
    /// named by `config.transport` — the entry point for custom transports
    /// and for the [`crate::transport::conformance`] battery.
    pub fn try_new_on(config: CgmConfig, transport: &dyn Transport<T>) -> Result<Self, CgmError> {
        if config.procs == 0 {
            return Err(CgmError::NoProcessors);
        }
        let wires = transport.open(config.procs)?;
        ResidentCgm::from_fabric(config, build_fabric_on(&config, wires))
    }

    fn from_fabric(config: CgmConfig, fabric: Fabric<T>) -> Result<Self, CgmError> {
        let Fabric {
            contexts,
            barrier,
            abort,
        } = fabric;
        let (done_tx, done_rx) = unbounded();
        let mut commands = Vec::with_capacity(config.procs);
        let mut workers = Vec::with_capacity(config.procs);
        for ctx in contexts {
            let proc = ctx.id();
            let (tx, rx) = unbounded();
            let barrier = Arc::clone(&barrier);
            let abort = Arc::clone(&abort);
            crate::diag::note_thread_spawn();
            match std::thread::Builder::new()
                .name(format!("cgm-worker-{proc}"))
                .spawn(move || worker_loop(ctx, rx, barrier, abort))
            {
                Ok(handle) => {
                    commands.push(tx);
                    workers.push(Some(handle));
                }
                Err(e) => {
                    // Wind the partial pool back down: closing the command
                    // channels ends the already-running worker loops.
                    drop(commands);
                    for handle in workers.into_iter().flatten() {
                        let _ = handle.join();
                    }
                    return Err(CgmError::WorkerSpawnFailed {
                        proc,
                        message: e.to_string(),
                    });
                }
            }
        }
        Ok(ResidentCgm {
            config,
            commands,
            done_rx,
            done_tx,
            workers,
            barrier,
            abort,
            recoveries: 0,
            // The fabric's contexts start at generation 0; the first job
            // moves them to 1.
            next_generation: 1,
        })
    }

    /// The pool's configuration.
    pub fn config(&self) -> &CgmConfig {
        &self.config
    }

    /// Number of virtual processors.
    pub fn procs(&self) -> usize {
        self.config.procs
    }

    /// Runs `f` on every resident virtual processor and collects the results
    /// (indexed by processor id) and this job's metered communication.
    ///
    /// Same contract as [`crate::CgmMachine::run`] — including the panic
    /// naming the failed processor — but without spawning anything.  The
    /// pool stays usable after a panicked job.
    pub fn run<R, F>(&mut self, f: F) -> RunOutcome<R>
    where
        R: Send + 'static,
        F: Fn(&mut ProcCtx<T>) -> R + Send + Sync + 'static,
    {
        match self.try_run(f) {
            Ok(outcome) => outcome,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fail-fast variant of [`ResidentCgm::run`]: a panicking job is
    /// reported as [`CgmError::ProcessorPanicked`] (naming the virtual
    /// processor whose code failed) instead of unwinding the caller.  The
    /// fabric is recovered before this returns, so subsequent jobs are not
    /// poisoned.
    pub fn try_run<R, F>(&mut self, f: F) -> Result<RunOutcome<R>, CgmError>
    where
        R: Send + 'static,
        F: Fn(&mut ProcCtx<T>) -> R + Send + Sync + 'static,
    {
        let p = self.config.procs;
        let job: Arc<JobFn<T>> = Arc::new(move |ctx| Box::new(f(ctx)) as Box<dyn Any + Send>);
        let state = Arc::new(JobState {
            slots: (0..p).map(|_| Mutex::new(None)).collect(),
            remaining: AtomicUsize::new(p),
            done: self.done_tx.clone(),
        });
        let generation = self.next_generation;
        self.next_generation += 1;
        let started = Instant::now();
        for tx in &self.commands {
            tx.send(Command::Job(
                Arc::clone(&job),
                Arc::clone(&state),
                generation,
            ))
            .map_err(|_| CgmError::PoolShutDown)?;
        }
        drop(job);

        // One wakeup per job: the last worker to deposit its outcome sends
        // the single completion signal.
        self.done_rx.recv().map_err(|_| CgmError::PoolShutDown)?;
        let elapsed = started.elapsed();

        let mut results = Vec::with_capacity(p);
        let mut per_proc = Vec::with_capacity(p);
        let mut matrix_plane = Vec::with_capacity(p);
        let mut panics: Vec<(usize, Box<dyn Any + Send>)> = Vec::new();
        for (id, slot) in state.slots.iter().enumerate() {
            let outcome = slot
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("every worker deposited exactly one outcome");
            match outcome {
                Ok((value, (data, words))) => {
                    results.push(
                        *value
                            .downcast::<R>()
                            .expect("a job closure returns the type it was submitted with"),
                    );
                    per_proc.push(data);
                    matrix_plane.push(words);
                }
                Err(payload) => panics.push((id, payload)),
            }
        }

        if !panics.is_empty() {
            self.recover()?;
            let (proc, message) = attribute_panics(&panics);
            return Err(CgmError::ProcessorPanicked { proc, message });
        }

        Ok(RunOutcome::from_parts(
            results,
            MachineMetrics {
                per_proc,
                matrix_plane,
                elapsed,
            },
        ))
    }

    /// Fused batch run: wakes every worker **once** for the whole batch of
    /// jobs, runs them back to back on the resident contexts, and collects
    /// one [`BatchJobOutcome`] per sub-job — the batched entry point behind
    /// [`CgmExecutor::try_run_batch`].
    ///
    /// Contract (identical to looping [`ResidentCgm::try_run`], minus `n-1`
    /// wakes and coordinator round-trips):
    ///
    /// * each sub-job starts a fresh generation on both planes and meters
    ///   its own communication, so results and metrics are exactly those of
    ///   solo runs — workers fence on the machine barrier between sub-jobs,
    ///   because a fast worker advancing its generation early would have
    ///   its envelopes dropped by a peer still receiving in the previous
    ///   sub-job;
    /// * the batch stops at the first panicking sub-job: it is reported as
    ///   [`BatchJobOutcome::Failed`] (the pool recovers before returning,
    ///   as after a failed solo run) and every later sub-job as
    ///   [`BatchJobOutcome::Skipped`] with its closure never invoked;
    /// * per-sub-job [`MachineMetrics::elapsed`] is the maximum over
    ///   workers of each worker's own sub-job wall-clock (the coordinator
    ///   only observes the batch as a whole).
    pub fn try_run_batch<R, F>(&mut self, fs: Vec<F>) -> Result<Vec<BatchJobOutcome<R>>, CgmError>
    where
        R: Send + 'static,
        F: Fn(&mut ProcCtx<T>) -> R + Send + Sync + 'static,
    {
        let p = self.config.procs;
        let n = fs.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let jobs: Arc<Vec<Box<JobFn<T>>>> = Arc::new(
            fs.into_iter()
                .map(|f| {
                    Box::new(move |ctx: &mut ProcCtx<T>| Box::new(f(ctx)) as Box<dyn Any + Send>)
                        as Box<JobFn<T>>
                })
                .collect(),
        );
        let state = Arc::new(BatchState {
            slots: (0..p).map(|_| Mutex::new(None)).collect(),
            remaining: AtomicUsize::new(p),
            done: self.done_tx.clone(),
        });
        let base = self.next_generation;
        self.next_generation += n as u64;
        for tx in &self.commands {
            tx.send(Command::Batch(Arc::clone(&jobs), Arc::clone(&state), base))
                .map_err(|_| CgmError::PoolShutDown)?;
        }
        drop(jobs);
        self.done_rx.recv().map_err(|_| CgmError::PoolShutDown)?;

        // Every worker deposited the prefix of sub-jobs it attempted, in
        // order; walk the prefixes in lockstep to assemble per-sub-job
        // outcomes.
        let mut per_worker: Vec<std::vec::IntoIter<SubJobOutcome>> = state
            .slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("every worker deposited exactly one outcome vector")
                    .into_iter()
            })
            .collect();

        let mut outcomes: Vec<BatchJobOutcome<R>> = Vec::with_capacity(n);
        let mut failed = false;
        for _ in 0..n {
            if failed {
                outcomes.push(BatchJobOutcome::Skipped);
                continue;
            }
            let mut results = Vec::with_capacity(p);
            let mut per_proc = Vec::with_capacity(p);
            let mut matrix_plane = Vec::with_capacity(p);
            let mut elapsed = Duration::ZERO;
            let mut panics: Vec<(usize, Box<dyn Any + Send>)> = Vec::new();
            let mut stopped = false;
            for (id, worker) in per_worker.iter_mut().enumerate() {
                match worker.next() {
                    Some(Ok((value, (data, words), dur))) => {
                        results.push(
                            *value
                                .downcast::<R>()
                                .expect("a job closure returns the type it was submitted with"),
                        );
                        per_proc.push(data);
                        matrix_plane.push(words);
                        elapsed = elapsed.max(dur);
                    }
                    Some(Err(payload)) => panics.push((id, payload)),
                    // The worker saw the poisoned inter-sub-job fence: a
                    // peer's panic (collected above or below) stopped it
                    // before this sub-job.
                    None => stopped = true,
                }
            }
            if panics.is_empty() && !stopped {
                outcomes.push(BatchJobOutcome::Done(RunOutcome::from_parts(
                    results,
                    MachineMetrics {
                        per_proc,
                        matrix_plane,
                        elapsed,
                    },
                )));
            } else {
                failed = true;
                let error = if panics.is_empty() {
                    // Defensive: a worker stopped here, but the panic that
                    // poisoned the fence was deposited at this very index
                    // by its own worker — so this branch is unreachable
                    // unless the lockstep invariant breaks.
                    debug_assert!(false, "batch stopped without a collected panic");
                    CgmError::ProcessorPanicked {
                        proc: 0,
                        message: "the batch was aborted".to_string(),
                    }
                } else {
                    let (proc, message) = attribute_panics(&panics);
                    CgmError::ProcessorPanicked { proc, message }
                };
                outcomes.push(BatchJobOutcome::Failed(error));
            }
        }
        if failed {
            self.recover()?;
        }
        Ok(outcomes)
    }

    /// Recovery round after a panicked job: every worker clears the dead
    /// job's in-flight messages, then the barrier and abort flag are
    /// re-armed.  Sound because all workers have deposited their outcome
    /// (none is inside the job any more) and they park between commands.
    fn recover(&mut self) -> Result<(), CgmError> {
        let (ack_tx, ack_rx) = unbounded();
        for tx in &self.commands {
            tx.send(Command::Reset(ack_tx.clone()))
                .map_err(|_| CgmError::PoolShutDown)?;
        }
        drop(ack_tx);
        for _ in 0..self.config.procs {
            ack_rx.recv().map_err(|_| CgmError::PoolShutDown)?;
        }
        self.barrier.reset();
        self.abort.clear();
        self.recoveries += 1;
        Ok(())
    }

    /// How many recovery rounds this pool has run — one per panicked job it
    /// contained and survived.  A scheduler multiplexing tenants over a
    /// fleet of pools can surface this as a per-machine health metric.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Sends every worker a shutdown command and joins the threads,
    /// collecting abnormal worker-thread deaths.
    fn join_workers(&mut self) -> Vec<(usize, Box<dyn Any + Send>)> {
        for tx in &self.commands {
            // A worker that already died has a closed command channel;
            // nothing left to tell it.
            let _ = tx.send(Command::Shutdown);
        }
        let mut panics = Vec::new();
        for (id, slot) in self.workers.iter_mut().enumerate() {
            if let Some(handle) = slot.take() {
                if let Err(payload) = handle.join() {
                    panics.push((id, payload));
                }
            }
        }
        panics
    }

    /// Shuts the pool down: parks no more, joins every worker thread.
    ///
    /// Workers never die with a panicking *job* (those are caught and
    /// reported per run), but if a worker thread itself terminated
    /// abnormally the panic is propagated here, naming the processor.
    pub fn shutdown(mut self) {
        let panics = self.join_workers();
        if !panics.is_empty() {
            raise_attributed_panic(panics);
        }
    }
}

impl<T: Send + 'static> Drop for ResidentCgm<T> {
    fn drop(&mut self) {
        let panics = self.join_workers();
        // Propagate abnormal worker deaths unless we are already unwinding
        // (a double panic would abort the process).
        if !panics.is_empty() && !std::thread::panicking() {
            raise_attributed_panic(panics);
        }
    }
}

impl<T: Send + 'static> CgmExecutor<T> for ResidentCgm<T> {
    fn config(&self) -> CgmConfig {
        self.config
    }

    fn try_run_job<R, F>(&mut self, f: F) -> Result<RunOutcome<R>, CgmError>
    where
        R: Send + 'static,
        F: Fn(&mut ProcCtx<T>) -> R + Send + Sync + 'static,
    {
        self.try_run(f)
    }

    fn try_run_batch<R, F>(&mut self, fs: Vec<F>) -> Result<Vec<BatchJobOutcome<R>>, CgmError>
    where
        R: Send + 'static,
        F: Fn(&mut ProcCtx<T>) -> R + Send + Sync + 'static,
    {
        ResidentCgm::try_run_batch(self, fs)
    }
}

/// The body of one resident worker thread: park on the command channel,
/// run jobs against the resident context, deposit the outcome, repeat.
fn worker_loop<T: Send>(
    mut ctx: ProcCtx<T>,
    commands: Receiver<Command<T>>,
    barrier: Arc<SuperstepBarrier>,
    abort: Arc<AbortFlag>,
) {
    let id = ctx.id();
    while let Ok(command) = commands.recv() {
        match command {
            Command::Job(job, state, generation) => {
                // New job generation on both planes: envelopes a previous
                // job sent but never received must not be delivered into
                // this one (the one-shot machine gets this for free by
                // dropping its fabric; the resident fabric must fence
                // explicitly).
                ctx.begin_job(generation);
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(&mut ctx)));
                // Release our share of the job closure *before* signalling,
                // so the caller can reclaim `Arc`ed state (try_unwrap) as
                // soon as the job completes.
                drop(job);
                let outcome = match outcome {
                    Ok(value) => Ok((value, ctx.take_metrics())),
                    Err(payload) => {
                        if !payload.is::<AbortPanic>() {
                            // Root cause: wake peers parked at the barrier
                            // or in a blocked receive.
                            abort.trigger(id);
                            barrier.poison(id);
                        }
                        // The dead job's counters are meaningless; reset
                        // them so the next job meters cleanly.
                        let _ = ctx.take_metrics();
                        Err(payload)
                    }
                };
                *state.slots[id].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
                // The last worker to finish sends the one completion signal
                // (the slot mutexes synchronize the deposits with the
                // coordinator's reads).
                if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1
                    && state.done.send(()).is_err()
                {
                    break; // pool dropped mid-job
                }
            }
            Command::Batch(jobs, state, base) => {
                let mut outcomes: Vec<SubJobOutcome> = Vec::with_capacity(jobs.len());
                for (k, job) in jobs.iter().enumerate() {
                    if k > 0 {
                        // Fence between sub-jobs: every worker must finish
                        // sub-job k-1 before any advances its generation —
                        // the generation filter drops envelopes from *any*
                        // other generation, so a fast worker's sub-job-k
                        // sends would otherwise be dropped by a slow peer
                        // still receiving in k-1.  The fence doubles as the
                        // abort propagation point: a peer's panic poisons
                        // it, stopping this worker's batch.  (A panic can
                        // land in the narrow window after this worker's
                        // cohort was released but before it returns — then
                        // this worker breaks while the panicker attempted
                        // sub-job k.  That ragged prefix is why generations
                        // are coordinator stamps, not local counters.)
                        if let BarrierWait::Poisoned(_) = barrier.wait() {
                            break;
                        }
                    }
                    ctx.begin_job(base + k as u64);
                    let sub_started = Instant::now();
                    let outcome =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(&mut ctx)));
                    match outcome {
                        Ok(value) => {
                            outcomes.push(Ok((value, ctx.take_metrics(), sub_started.elapsed())));
                        }
                        Err(payload) => {
                            if !payload.is::<AbortPanic>() {
                                abort.trigger(id);
                                barrier.poison(id);
                            }
                            let _ = ctx.take_metrics();
                            outcomes.push(Err(payload));
                            break;
                        }
                    }
                }
                // Release the batch closures before signalling, so the
                // caller can reclaim `Arc`ed per-sub-job state (slots of
                // sub-jobs that never ran) as soon as the batch completes.
                drop(jobs);
                *state.slots[id].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcomes);
                if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1
                    && state.done.send(()).is_err()
                {
                    break; // pool dropped mid-batch
                }
            }
            Command::Reset(ack) => {
                ctx.clear_in_flight();
                if ack.send(id).is_err() {
                    break;
                }
            }
            Command::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resident_results_match_the_one_shot_machine() {
        let config = CgmConfig::new(4).with_seed(11);
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(config);
        let job = |ctx: &mut ProcCtx<u64>| ctx.id() * 3 + ctx.procs();
        let resident = pool.run(job).into_results();
        let one_shot = crate::CgmMachine::new(config).run(job).into_results();
        assert_eq!(resident, one_shot);
        pool.shutdown();
    }

    #[test]
    fn repeated_jobs_reuse_the_fabric() {
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(3));
        for round in 0..10u64 {
            let out = pool.run(move |ctx| {
                let id = ctx.id() as u64;
                let next = (ctx.id() + 1) % ctx.procs();
                let prev = (ctx.id() + ctx.procs() - 1) % ctx.procs();
                ctx.comm_mut().send(next, round, vec![id + round]);
                ctx.comm_mut().recv(prev, round)[0]
            });
            let results = out.into_results();
            assert_eq!(results[0], 2 + round);
            assert_eq!(results[1], round);
        }
    }

    #[test]
    fn per_job_metrics_are_isolated() {
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(2));
        let job = |ctx: &mut ProcCtx<u64>| {
            let other = 1 - ctx.id();
            ctx.comm_mut().send(other, 0, vec![0u64; 5]);
            let _ = ctx.comm_mut().recv(other, 0);
            ctx.comm_mut().barrier();
        };
        for _ in 0..3 {
            let out = pool.run(job);
            for m in &out.metrics().per_proc {
                assert_eq!(m.words_sent, 5, "metrics must not accumulate across jobs");
                assert_eq!(m.barriers, 1);
            }
        }
    }

    #[test]
    fn rng_streams_advance_across_jobs() {
        use cgp_rng::RandomSource;
        let config = CgmConfig::new(2).with_seed(5);
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(config);
        let draw = |ctx: &mut ProcCtx<u64>| ctx.rng().next_u64();
        let first = pool.run(draw).into_results();
        let second = pool.run(draw).into_results();
        assert_ne!(
            first, second,
            "resident contexts persist, so streams advance"
        );
        // The first job draws exactly what a one-shot run draws.
        let one_shot = crate::CgmMachine::new(config).run(draw).into_results();
        assert_eq!(first, one_shot);
    }

    #[test]
    fn try_run_reports_the_failed_processor_and_recovers() {
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(4));
        let err = pool
            .try_run(|ctx: &mut ProcCtx<u64>| {
                if ctx.id() == 2 {
                    panic!("boom in the job");
                }
                // Peers park at the barrier; the poison must wake them.
                ctx.comm_mut().barrier();
            })
            .unwrap_err();
        match err {
            CgmError::ProcessorPanicked { proc, ref message } => {
                assert_eq!(proc, 2, "the root cause is blamed, not a woken peer");
                assert!(message.contains("boom in the job"));
            }
            other => panic!("unexpected error: {other}"),
        }
        assert_eq!(pool.recoveries(), 1, "one recovery round was run");
        // The pool is not poisoned: the next job runs on a clean fabric.
        let out = pool.run(|ctx: &mut ProcCtx<u64>| {
            let next = (ctx.id() + 1) % ctx.procs();
            let prev = (ctx.id() + ctx.procs() - 1) % ctx.procs();
            ctx.comm_mut().send(next, 9, vec![7u64]);
            ctx.comm_mut().barrier();
            ctx.comm_mut().recv(prev, 9)[0]
        });
        assert_eq!(out.into_results(), vec![7; 4]);
    }

    #[test]
    fn unconsumed_envelopes_of_a_clean_job_do_not_leak_into_the_next() {
        // A job may legally complete without receiving everything that was
        // sent to it; the one-shot machine drops such envelopes with its
        // fabric, and the resident pool must match that contract (the
        // generation fence drops them lazily on the next receive).
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(2));
        pool.run(|ctx: &mut ProcCtx<u64>| {
            if ctx.id() == 0 {
                ctx.comm_mut().send(1, 0, vec![111]);
            }
        });
        let out = pool.run(|ctx: &mut ProcCtx<u64>| {
            if ctx.id() == 0 {
                ctx.comm_mut().send(1, 0, vec![222]);
                vec![]
            } else {
                ctx.comm_mut().recv(0, 0)
            }
        });
        assert_eq!(
            out.results()[1],
            vec![222],
            "job 2 must receive its own envelope, not job 1's leftover"
        );
        // Unconsumed self-sends are fenced too.
        pool.run(|ctx: &mut ProcCtx<u64>| {
            let id = ctx.id();
            ctx.comm_mut().send(id, 5, vec![1]);
        });
        let err = pool
            .try_run(|ctx: &mut ProcCtx<u64>| {
                let id = ctx.id();
                let _ = ctx.comm_mut().recv(id, 5);
            })
            .unwrap_err();
        assert!(matches!(err, CgmError::ProcessorPanicked { .. }));
    }

    #[test]
    fn panicked_job_messages_do_not_leak_into_the_next_job() {
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(2));
        // Processor 0 sends to 1 and then panics; processor 1 panics before
        // receiving.  The envelope must not survive into the next job.
        let err = pool
            .try_run(|ctx: &mut ProcCtx<u64>| {
                if ctx.id() == 0 {
                    ctx.comm_mut().send(1, 0, vec![99u64]);
                }
                panic!("both die");
            })
            .unwrap_err();
        assert!(matches!(err, CgmError::ProcessorPanicked { .. }));
        let out = pool.run(|ctx: &mut ProcCtx<u64>| {
            if ctx.id() == 0 {
                ctx.comm_mut().send(1, 1, vec![1u64]);
                vec![]
            } else {
                ctx.comm_mut().recv(0, 1)
            }
        });
        assert_eq!(out.results()[1], vec![1], "stale envelope 99 was drained");
    }

    #[test]
    #[should_panic(expected = "virtual processor 1 panicked: resident boom")]
    fn run_panics_with_the_processor_id() {
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(3));
        pool.run(|ctx: &mut ProcCtx<u64>| {
            if ctx.id() == 1 {
                panic!("resident boom");
            }
        });
    }

    #[test]
    fn zero_processors_is_an_error_value() {
        let config = CgmConfig {
            procs: 0,
            seed: 0,
            transport: Default::default(),
        };
        assert!(matches!(
            ResidentCgm::<u64>::try_new(config),
            Err(CgmError::NoProcessors)
        ));
    }

    #[test]
    fn batched_jobs_match_back_to_back_solo_runs() {
        // Communication-heavy sub-jobs: each sub-job sends around a ring and
        // must receive its *own* generation's envelope (the inter-sub-job
        // fence is what makes this safe).
        let make_job = |round: u64| {
            move |ctx: &mut ProcCtx<u64>| {
                let id = ctx.id() as u64;
                let next = (ctx.id() + 1) % ctx.procs();
                let prev = (ctx.id() + ctx.procs() - 1) % ctx.procs();
                ctx.comm_mut().send(next, round, vec![id * 100 + round]);
                ctx.comm_mut().recv(prev, round)[0]
            }
        };
        let mut solo: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(4).with_seed(2));
        let mut batched: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(4).with_seed(2));
        let solo_results: Vec<Vec<u64>> = (0..8)
            .map(|r| solo.run(make_job(r)).into_results())
            .collect();
        let outcomes = batched
            .try_run_batch((0..8).map(make_job).collect())
            .unwrap();
        assert_eq!(outcomes.len(), 8);
        for (r, (outcome, solo_result)) in outcomes.into_iter().zip(solo_results).enumerate() {
            match outcome {
                BatchJobOutcome::Done(out) => {
                    assert_eq!(out.into_results(), solo_result, "sub-job {r} diverged");
                }
                other => panic!("sub-job {r} did not complete: {other:?}"),
            }
        }
    }

    #[test]
    fn batched_metrics_meter_each_sub_job() {
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(2));
        let make_job = |words: usize| {
            move |ctx: &mut ProcCtx<u64>| {
                let other = 1 - ctx.id();
                ctx.comm_mut().send(other, 0, vec![0u64; words]);
                let _ = ctx.comm_mut().recv(other, 0);
            }
        };
        let outcomes = pool.try_run_batch(vec![make_job(5), make_job(9)]).unwrap();
        let expect = [5u64, 9u64];
        for (k, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                BatchJobOutcome::Done(out) => {
                    for m in &out.metrics().per_proc {
                        assert_eq!(m.words_sent, expect[k], "sub-job {k} metrics leaked");
                    }
                }
                other => panic!("sub-job {k} did not complete: {other:?}"),
            }
        }
    }

    #[test]
    fn a_mid_batch_panic_fails_that_sub_job_and_skips_the_rest() {
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(3));
        let clean = |_round: u64| {
            |ctx: &mut ProcCtx<u64>| {
                ctx.comm_mut().barrier();
                ctx.id()
            }
        };
        // Same closure type via a capture-driven branch: sub-job 1 panics on
        // processor 2 while its peers park at the barrier.
        let job = |bomb: bool| {
            move |ctx: &mut ProcCtx<u64>| {
                if bomb && ctx.id() == 2 {
                    panic!("mid-batch boom");
                }
                ctx.comm_mut().barrier();
                ctx.id()
            }
        };
        let _ = clean;
        let outcomes = pool
            .try_run_batch(vec![job(false), job(true), job(false), job(false)])
            .unwrap();
        assert!(matches!(outcomes[0], BatchJobOutcome::Done(_)));
        match &outcomes[1] {
            BatchJobOutcome::Failed(CgmError::ProcessorPanicked { proc, message }) => {
                assert_eq!(*proc, 2, "the root cause is blamed");
                assert!(message.contains("mid-batch boom"));
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert!(matches!(outcomes[2], BatchJobOutcome::Skipped));
        assert!(matches!(outcomes[3], BatchJobOutcome::Skipped));
        assert_eq!(pool.recoveries(), 1, "the pool recovered once");
        // The fabric is clean: the next batch completes.
        let outcomes = pool.try_run_batch(vec![job(false), job(false)]).unwrap();
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, BatchJobOutcome::Done(_))));
    }

    #[test]
    fn a_panic_racing_the_inter_sub_job_fence_does_not_wedge_the_pool() {
        // The nasty schedule: every worker arrives at the fence before
        // sub-job 1, the cohort is released, and the panicker — last to
        // arrive, so first to run — dies before a released peer exits
        // `wait()`.  That peer observes the poison, breaks, and never
        // attempts sub-job 1, while the panicker did.  With locally
        // *counted* generations the workers' fences would drift apart for
        // good and the next communicating job would park forever with no
        // abort raised (this test then hangs); coordinator-*stamped*
        // generations keep the fences aligned no matter how ragged the
        // attempted prefixes are.
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(3));
        let ring = |ctx: &mut ProcCtx<u64>| {
            let id = ctx.id() as u64;
            let next = (ctx.id() + 1) % ctx.procs();
            let prev = (ctx.id() + ctx.procs() - 1) % ctx.procs();
            ctx.comm_mut().send(next, 3, vec![id]);
            ctx.comm_mut().recv(prev, 3)[0]
        };
        let job = |bomb: bool| {
            move |ctx: &mut ProcCtx<u64>| {
                // Panic immediately: the panicker must beat a released peer
                // out of the fence for the race to fire, and on a few-core
                // host an instant panic usually does.
                if bomb && ctx.id() == 1 {
                    panic!("fence-race boom");
                }
                ring(ctx)
            }
        };
        for round in 0..100 {
            let outcomes = pool.try_run_batch(vec![job(false), job(true)]).unwrap();
            assert!(
                matches!(outcomes[0], BatchJobOutcome::Done(_)),
                "round {round}"
            );
            assert!(
                matches!(outcomes[1], BatchJobOutcome::Failed(_)),
                "round {round}"
            );
            let out = pool.run(ring);
            assert_eq!(out.into_results(), vec![2, 0, 1], "round {round}");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(2));
        let jobs: Vec<fn(&mut ProcCtx<u64>) -> usize> = Vec::new();
        assert!(pool.try_run_batch(jobs).unwrap().is_empty());
        // The pool still serves normal jobs afterwards.
        assert_eq!(pool.run(|ctx| ctx.id()).into_results(), vec![0, 1]);
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(8));
        let _ = pool.run(|ctx: &mut ProcCtx<u64>| ctx.id());
        pool.shutdown();
        // Dropping without an explicit shutdown also joins.
        let pool2: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(2));
        drop(pool2);
    }
}
