//! Integration tests of the CGM simulator: collective communication patterns
//! built from the point-to-point primitives, metering invariants, and stress
//! tests with many virtual processors per physical core.

use cgp_cgm::{BlockDistribution, CgmConfig, CgmMachine, CostModel, ProcCtx};

#[test]
fn broadcast_from_root_reaches_everyone() {
    let p = 9;
    let machine = CgmMachine::with_procs(p);
    let results = machine
        .run(|ctx: &mut ProcCtx<u64>| {
            if ctx.id() == 0 {
                for to in 0..ctx.procs() {
                    ctx.comm_mut().send(to, 0, vec![424_242]);
                }
            }
            ctx.comm_mut().recv(0, 0)[0]
        })
        .into_results();
    assert!(results.iter().all(|&v| v == 424_242));
}

#[test]
fn gather_collects_in_processor_order() {
    let p = 7;
    let machine = CgmMachine::with_procs(p);
    let results = machine
        .run(|ctx: &mut ProcCtx<u64>| {
            let id = ctx.id() as u64;
            ctx.comm_mut().send(0, 0, vec![id * id]);
            if ctx.id() == 0 {
                (0..ctx.procs())
                    .map(|from| ctx.comm_mut().recv(from, 0)[0])
                    .collect()
            } else {
                Vec::new()
            }
        })
        .into_results();
    assert_eq!(results[0], (0..p as u64).map(|i| i * i).collect::<Vec<_>>());
    assert!(results[1..].iter().all(|v| v.is_empty()));
}

#[test]
fn prefix_sum_via_ring_pipeline() {
    // A classic CGM exercise: exclusive prefix sums over processor values.
    let p = 6;
    let machine = CgmMachine::new(CgmConfig::new(p).with_seed(1));
    let results = machine
        .run(|ctx: &mut ProcCtx<u64>| {
            let id = ctx.id();
            let value = (id as u64 + 1) * 10;
            // Everyone sends its value to everyone with a higher id.
            for to in id + 1..ctx.procs() {
                ctx.comm_mut().send(to, 0, vec![value]);
            }
            let mut acc = 0;
            for from in 0..id {
                acc += ctx.comm_mut().recv(from, 0)[0];
            }
            acc
        })
        .into_results();
    assert_eq!(results, vec![0, 10, 30, 60, 100, 150]);
}

#[test]
fn repeated_all_to_all_rounds_use_distinct_tags() {
    let p = 5;
    let rounds = 10u64;
    let machine = CgmMachine::with_procs(p);
    let outcome = machine.run(|ctx: &mut ProcCtx<u64>| {
        let mut checksum = 0u64;
        for round in 0..rounds {
            let outgoing: Vec<Vec<u64>> = (0..ctx.procs())
                .map(|j| vec![round * 100 + j as u64])
                .collect();
            let incoming = ctx.comm_mut().all_to_all(outgoing, round);
            for v in incoming {
                checksum += v[0];
            }
            ctx.comm_mut().barrier();
        }
        checksum
    });
    // Every processor receives, per round, p messages each carrying
    // round*100 + its own id.
    for (id, &sum) in outcome.results().iter().enumerate() {
        let expected: u64 = (0..rounds).map(|r| p as u64 * (r * 100 + id as u64)).sum();
        assert_eq!(sum, expected);
    }
}

#[test]
fn metrics_are_deterministic_across_runs() {
    let run = || {
        let machine = CgmMachine::new(CgmConfig::new(4).with_seed(9));
        let outcome = machine.run(|ctx: &mut ProcCtx<u64>| {
            let outgoing: Vec<Vec<u64>> = (0..ctx.procs()).map(|j| vec![j as u64; j]).collect();
            let _ = ctx.comm_mut().all_to_all(outgoing, 0);
            ctx.comm_mut().barrier();
        });
        outcome
            .metrics()
            .per_proc
            .iter()
            .map(|m| (m.words_sent, m.words_received, m.messages_sent))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn cost_model_ranks_algorithms_consistently() {
    // A chatty pattern (many small messages) must cost more under a
    // latency-dominated model than a bulk pattern with the same volume.
    let machine = CgmMachine::with_procs(4);
    let chatty = machine.run(|ctx: &mut ProcCtx<u64>| {
        for _ in 0..16 {
            let outgoing: Vec<Vec<u64>> = (0..ctx.procs()).map(|_| vec![1]).collect();
            let _ = ctx.comm_mut().all_to_all(outgoing, 0);
        }
    });
    let bulk = machine.run(|ctx: &mut ProcCtx<u64>| {
        let outgoing: Vec<Vec<u64>> = (0..ctx.procs()).map(|_| vec![1; 16]).collect();
        let _ = ctx.comm_mut().all_to_all(outgoing, 0);
    });
    let latency_model = CostModel {
        latency_per_message: 1_000.0,
        time_per_word: 1.0,
    };
    assert!(latency_model.makespan(chatty.metrics()) > latency_model.makespan(bulk.metrics()));
    // Under a pure-bandwidth model they tie.
    let bandwidth_model = CostModel {
        latency_per_message: 0.0,
        time_per_word: 1.0,
    };
    assert!(
        (bandwidth_model.makespan(chatty.metrics()) - bandwidth_model.makespan(bulk.metrics()))
            .abs()
            < 1e-9
    );
}

#[test]
fn stress_many_processors_and_messages() {
    // 96 virtual processors exchanging 4 rounds of all-to-all; verifies no
    // deadlocks, no message mixing, and exact volume accounting.
    let p = 96;
    let rounds = 4u64;
    let machine = CgmMachine::with_procs(p);
    let outcome = machine.run(move |ctx: &mut ProcCtx<u64>| {
        let id = ctx.id() as u64;
        let mut ok = true;
        for round in 0..rounds {
            let outgoing: Vec<Vec<u64>> = (0..p).map(|j| vec![round, id, j as u64]).collect();
            let incoming = ctx.comm_mut().all_to_all(outgoing, round);
            for (from, msg) in incoming.iter().enumerate() {
                ok &= msg == &vec![round, from as u64, id];
            }
        }
        ok
    });
    assert!(outcome.results().iter().all(|&ok| ok));
    for m in &outcome.metrics().per_proc {
        assert_eq!(m.words_sent, rounds * p as u64 * 3);
        assert_eq!(m.words_received, rounds * p as u64 * 3);
        assert_eq!(m.messages_sent, rounds * (p as u64 - 1));
    }
}

#[test]
fn block_distribution_round_trip_through_the_machine() {
    // Split a vector over the machine, let each processor tag its items, and
    // reassemble — positions must be preserved by the split/concat pair.
    let n = 103u64;
    let p = 5;
    let dist = BlockDistribution::even(n, p);
    let blocks = dist.split_vec((0..n).collect::<Vec<u64>>());
    let slots: Vec<parking_lot::Mutex<Option<Vec<u64>>>> = blocks
        .into_iter()
        .map(|b| parking_lot::Mutex::new(Some(b)))
        .collect();
    let machine = CgmMachine::with_procs(p);
    let outcome =
        machine.run(|ctx: &mut ProcCtx<u64>| slots[ctx.id()].lock().take().expect("taken once"));
    let restored = dist.concat_vec(outcome.into_results());
    assert_eq!(restored, (0..n).collect::<Vec<u64>>());
}
