//! Transport conformance over the **process** transport, plus its
//! process-specific observables.
//!
//! `harness = false`: the process transport spawns mailbox children by
//! re-executing this binary, so `main` must install the re-exec hook
//! (`transport::process::init`) before anything else — the default libtest
//! harness owns `main` and cannot.  The thread transport runs the same
//! battery in-harness (`transport::conformance::tests`); this binary
//! re-runs it anyway so both transports are exercised by one battery in one
//! place.

use std::time::Duration;

use cgp_cgm::transport::{conformance, process, Envelope, Transport, TransportRecv};
use cgp_cgm::{
    diag, CgmConfig, ProcCtx, ProcessTransport, ResidentCgm, ThreadTransport, TransportKind,
};

fn main() {
    process::init();

    run("conformance::check(ThreadTransport)", || {
        conformance::check(&ThreadTransport)
    });
    run("conformance::check(ProcessTransport)", || {
        conformance::check(&ProcessTransport)
    });
    run(
        "process_fabric_meters_wire_bytes",
        process_fabric_meters_wire_bytes,
    );
    run(
        "process_fabric_spawns_one_child_per_proc",
        process_fabric_spawns_one_child_per_proc,
    );
    run(
        "threads_and_process_agree_on_results",
        threads_and_process_agree_on_results,
    );
    run(
        "word_plane_strings_survive_the_wire",
        word_plane_payload_types_survive_the_wire,
    );

    println!("transport_conformance: all checks passed");
}

fn run(name: &str, f: impl FnOnce()) {
    print!("{name} ... ");
    f();
    println!("ok");
}

/// Sending over the process transport frames bytes onto the socket, and the
/// endpoint meters them; the thread transport meters zero for the same
/// traffic (checked in-harness).
fn process_fabric_meters_wire_bytes() {
    let mut wires: cgp_cgm::FabricWires<u64> = ProcessTransport.open(2).expect("open");
    assert_eq!(wires.data[0].wire_bytes(), 0);
    wires.data[0]
        .send(
            1,
            Envelope {
                from: 0,
                tag: 1,
                generation: 0,
                payload: vec![1, 2, 3],
            },
        )
        .expect("send");
    // frame = 8 (len) + 22 (header) + 24 (3 × u64)
    assert_eq!(wires.data[0].wire_bytes(), 54);
    match wires.data[1].recv_timeout(Duration::from_secs(10)) {
        TransportRecv::Envelope(env) => assert_eq!(env.payload, vec![1, 2, 3]),
        other => panic!("expected the envelope, got {other:?}"),
    }
    // Receiving costs the receiver nothing: wire bytes meter framing only.
    assert_eq!(wires.data[1].wire_bytes(), 0);
}

fn process_fabric_spawns_one_child_per_proc() {
    let before = diag::startup_counters();
    let wires: cgp_cgm::FabricWires<u64> = ProcessTransport.open(3).expect("open");
    let after = diag::startup_counters();
    assert_eq!(
        after.process_spawns,
        before.process_spawns + 3,
        "one mailbox process per virtual processor"
    );
    drop(wires);
    // The thread transport spawns no processes.
    let wires: cgp_cgm::FabricWires<u64> = ThreadTransport.open(3).expect("open");
    assert_eq!(
        diag::startup_counters().process_spawns,
        after.process_spawns
    );
    drop(wires);
}

/// The substrate never touches the engine's random streams, so the same
/// seeded job computes identical results on both transports.
fn threads_and_process_agree_on_results() {
    let job = |ctx: &mut ProcCtx<u64>| {
        use cgp_rng::RandomSource;
        let p = ctx.procs();
        let draw = ctx.matrix_ctx().sampling_rng().next_u64() % 1000;
        let outgoing: Vec<Vec<u64>> = (0..p).map(|j| vec![draw + j as u64]).collect();
        let incoming = ctx.comm_mut().all_to_all(outgoing, 0);
        incoming.into_iter().map(|v| v[0]).sum::<u64>()
    };
    let config = CgmConfig::new(4).with_seed(42);
    let mut threads: ResidentCgm<u64> = ResidentCgm::try_new(config).expect("threads pool");
    let mut process: ResidentCgm<u64> =
        ResidentCgm::try_new(config.with_transport(TransportKind::Process)).expect("process pool");
    for _ in 0..3 {
        assert_eq!(
            threads.run(job).into_results(),
            process.run(job).into_results(),
            "same seed, same results, regardless of substrate"
        );
    }
    threads.shutdown();
    process.shutdown();
}

/// A non-numeric registered payload type (String) round-trips through the
/// wire codecs on the data plane while the word plane keeps working.
fn word_plane_payload_types_survive_the_wire() {
    let mut pool: ResidentCgm<String> =
        ResidentCgm::try_new(CgmConfig::new(2).with_transport(TransportKind::Process))
            .expect("process pool");
    let out = pool.run(|ctx: &mut ProcCtx<String>| {
        let other = 1 - ctx.id();
        let greeting = format!("from {} 🦀", ctx.id());
        ctx.comm_mut().send(other, 0, vec![greeting]);
        ctx.comm_mut().recv(other, 0).remove(0)
    });
    assert_eq!(
        out.into_results(),
        vec!["from 1 🦀".to_string(), "from 0 🦀".to_string()]
    );
    pool.shutdown();
}
