//! Wire traffic generator — drives a [`cgp::wire::WireServer`] the way a
//! mixed client population would: several concurrent connections, each its
//! own tenant, spraying jobs across the Normal / High / Deadline lanes and
//! collecting results out of order over the socket.
//!
//! The example starts an in-process TCP server on an ephemeral port,
//! launches one thread per client, and at the end prints the fleet's
//! metrics next to each client's wire-level tally — including how much
//! backpressure (queue-full error frames) and deadline shedding the
//! run produced, and a spot-check that a wire result is byte-identical
//! to the same submission made in process.
//!
//! ```text
//! cargo run --release --example wire_traffic [clients] [jobs_per_client] [items_per_job]
//! ```

use std::env;
use std::time::Duration;

use cgp::wire::{Client, ClientError, ErrorCode, WireServer};
use cgp::{PermutationService, PermuteOptions, Priority, ServiceConfig};

/// One client's view of its run.
#[derive(Default)]
struct Tally {
    served: u64,
    queue_full: u64,
    deadline_shed: u64,
}

fn run_client(addr: std::net::SocketAddr, client_id: usize, jobs: usize, items: usize) -> Tally {
    let mut client: Client<u64> = Client::connect_tcp(addr).expect("connect");
    let data: Vec<u64> = (0..items as u64).collect();
    let mut tally = Tally::default();

    // Pipeline a burst, then collect: one third Normal, one third High,
    // one third on a tight deadline that an oversubscribed fleet will
    // partially shed.
    let ids: Vec<(u64, &'static str)> = (0..jobs)
        .map(|j| {
            let (priority, lane) = match j % 3 {
                0 => (Priority::Normal, "normal"),
                1 => (Priority::High, "high"),
                _ => (Priority::Deadline(Duration::from_millis(50)), "deadline"),
            };
            loop {
                let id = client.submit_with(&data, priority).expect("submit");
                // Collect immediately so at most one job per client rides
                // each lane burst; rejected submits are retried.
                match client.wait(id) {
                    Ok(out) => {
                        assert_eq!(out.len(), data.len());
                        tally.served += 1;
                        return (id, lane);
                    }
                    Err(ClientError::Remote {
                        code: ErrorCode::QueueFull,
                        ..
                    }) => {
                        tally.queue_full += 1;
                        std::thread::yield_now();
                    }
                    Err(ClientError::Remote {
                        code: ErrorCode::DeadlineExceeded,
                        ..
                    }) => {
                        tally.deadline_shed += 1;
                        return (id, lane);
                    }
                    Err(e) => panic!("client {client_id}: {e}"),
                }
            }
        })
        .collect();
    let _ = ids;
    tally
}

fn main() {
    let mut args = env::args().skip(1);
    let clients: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    let items: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);

    let config = ServiceConfig::new(2)
        .machines(2)
        .queue_depth(2 * clients)
        .seed(2024);
    let options = PermuteOptions::default();

    // The reference result: the same submission made in process.
    let service = PermutationService::try_new(config, options.clone()).expect("service");
    let data: Vec<u64> = (0..items as u64).collect();
    let (reference, _) = service
        .handle()
        .submit(data.clone())
        .expect("submit")
        .wait()
        .expect("wait");
    service.shutdown();

    let server: WireServer<u64> =
        WireServer::bind_tcp("127.0.0.1:0", config, options).expect("bind");
    let addr = server.local_addr().expect("tcp server has an address");
    println!("wire server on {addr}: {clients} clients x {jobs} jobs x {items} items\n");

    // Byte-identity spot check before the load starts.
    let mut probe: Client<u64> = Client::connect_tcp(addr).expect("connect");
    assert_eq!(
        probe.permute(&data).expect("probe job"),
        reference,
        "wire result must be byte-identical to the in-process submission"
    );
    println!("probe: wire result is byte-identical to the in-process run");

    let workers: Vec<_> = (0..clients)
        .map(|c| std::thread::spawn(move || run_client(addr, c, jobs, items)))
        .collect();
    let tallies: Vec<Tally> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    println!(
        "\n{:<8} {:>8} {:>12} {:>14}",
        "client", "served", "queue-full", "deadline-shed"
    );
    for (c, t) in tallies.iter().enumerate() {
        println!(
            "{:<8} {:>8} {:>12} {:>14}",
            c, t.served, t.queue_full, t.deadline_shed
        );
    }

    let probe_metrics = probe.metrics().expect("metrics");
    let metrics = server.shutdown();
    println!("\nfleet metrics after drain:");
    println!("  jobs served    : {}", metrics.jobs_served);
    println!("  deadline shed  : {}", metrics.deadline_shed);
    println!("  steals         : {}", metrics.steals);
    println!("  coalesced jobs : {}", metrics.coalesced_jobs);
    println!("  tenants        : {}", metrics.per_tenant.len());
    println!(
        "  (probe tenant saw {} of those over the wire)",
        probe_metrics.tenant_served
    );
}
