//! Load balancing — the first motivation listed in the paper's introduction:
//! "achieve a distribution of the data to avoid load imbalances in parallel
//! and distributed computing".
//!
//! A synthetic workload of tasks with heavily skewed costs (a Zipf-like
//! distribution, with the expensive tasks clustered at the front — as happens
//! when data arrives sorted) is assigned to processors (a) in contiguous
//! chunks of the original order and (b) after a uniform random permutation.
//! The example prints the per-processor load and the makespan ratio of both
//! assignments.
//!
//! ```text
//! cargo run --release --example load_balancing [tasks] [procs]
//! ```

use std::env;

use cgp::{MatrixBackend, Permuter};

/// Synthetic task costs: a few very expensive tasks, many cheap ones, sorted
/// from expensive to cheap (the worst case for contiguous assignment).
fn skewed_costs(n: usize) -> Vec<u64> {
    (0..n)
        .map(|i| {
            let rank = (i + 1) as f64;
            // Zipf-ish: cost ~ n / rank, floored at 1.
            ((n as f64 / rank).ceil() as u64).max(1)
        })
        .collect()
}

fn per_proc_load(costs: &[u64], p: usize) -> Vec<u64> {
    let chunk = costs.len().div_ceil(p);
    (0..p)
        .map(|i| {
            costs[(i * chunk).min(costs.len())..((i + 1) * chunk).min(costs.len())]
                .iter()
                .sum()
        })
        .collect()
}

fn main() {
    let mut args = env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let p: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let costs = skewed_costs(n);
    let total: u64 = costs.iter().sum();
    let ideal = total as f64 / p as f64;

    println!("Assigning {n} skewed tasks (total cost {total}) to {p} processors\n");

    // (a) contiguous assignment of the original (sorted) order.
    let naive = per_proc_load(&costs, p);
    // (b) assignment after a uniform random permutation of the tasks.
    let permuter = Permuter::new(p)
        .seed(7)
        .backend(MatrixBackend::ParallelOptimal);
    let (shuffled, _) = permuter.permute(costs.clone());
    let balanced = per_proc_load(&shuffled, p);

    println!("{:<6} {:>16} {:>16}", "proc", "contiguous", "after shuffle");
    for i in 0..p {
        println!("{:<6} {:>16} {:>16}", i, naive[i], balanced[i]);
    }
    let naive_makespan = *naive.iter().max().unwrap() as f64;
    let balanced_makespan = *balanced.iter().max().unwrap() as f64;
    println!("\nideal load per processor : {ideal:.0}");
    println!(
        "contiguous makespan      : {naive_makespan:.0}  ({:.2}x ideal)",
        naive_makespan / ideal
    );
    println!(
        "shuffled makespan        : {balanced_makespan:.0}  ({:.2}x ideal)",
        balanced_makespan / ideal
    );
    println!(
        "\nrandom permutation reduced the makespan by a factor of {:.2}",
        naive_makespan / balanced_makespan
    );
}
