//! Quickstart: permute a vector of integers over a virtual coarse grained
//! machine and inspect the run report.
//!
//! ```text
//! cargo run --release --example quickstart [n] [p]
//! ```

use std::env;
use std::time::Instant;

use cgp::{MatrixBackend, Permuter};

fn main() {
    let mut args = env::args().skip(1);
    let n: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let p: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    println!("Uniform random permutation of {n} items on {p} virtual processors");
    println!("(Gustedt RR-4639, Algorithm 1)\n");

    let data: Vec<u64> = (0..n as u64).collect();

    for backend in MatrixBackend::ALL {
        let permuter = Permuter::new(p).seed(42).backend(backend);
        let started = Instant::now();
        let (shuffled, report) = permuter.permute(data.clone());
        let elapsed = started.elapsed();

        // Sanity: the output is a permutation of the input.
        debug_assert_eq!(
            {
                let mut s = shuffled.clone();
                s.sort_unstable();
                s
            },
            data
        );

        println!("matrix backend {:<22}", backend.name());
        println!("  total wall clock       : {elapsed:?}");
        println!("  matrix sampling        : {:?}", report.matrix_elapsed);
        println!("  shuffle + exchange     : {:?}", report.exchange_elapsed);
        println!(
            "  exchange volume        : max {} words/processor (m = {})",
            report.max_exchange_volume(),
            n / p
        );
        println!(
            "  communication balance  : {:.3} (1.0 = perfect)",
            report.exchange_metrics.comm_balance()
        );
        println!("  first ten outputs      : {:?}\n", &shuffled[..10.min(n)]);
    }

    // The sequential reference (Fisher-Yates) for comparison.
    let mut rng = cgp::Pcg64::seed_from_u64(42);
    let mut seq = data;
    let started = Instant::now();
    cgp::fisher_yates_shuffle(&mut rng, &mut seq);
    println!("sequential Fisher-Yates  : {:?}", started.elapsed());
}
