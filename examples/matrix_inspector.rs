//! Inspect the distribution of communication matrices.
//!
//! Samples many communication matrices for a small machine and compares the
//! empirical distribution of one entry against the exact hypergeometric
//! marginal of Proposition 3, for each of the paper's sampling algorithms.
//!
//! ```text
//! cargo run --release --example matrix_inspector [samples]
//! ```

use std::env;

use cgp::{
    sample_parallel_log, sample_parallel_optimal, sample_recursive, sample_sequential, CgmConfig,
    CgmMachine, Hypergeometric, Pcg64,
};

/// One sampling algorithm under test: draws the `(0, 0)` entry of a freshly
/// sampled matrix for a given seed.
type EntrySampler = Box<dyn Fn(u64) -> u64>;

fn main() {
    let samples: u64 = env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);

    // 4 processors, 12 items each.
    let p = 4usize;
    let m = 12u64;
    let n = m * p as u64;
    let marginal = Hypergeometric::new(m, m, n - m);

    println!("distribution of entry a_00 over {samples} sampled {p}x{p} matrices (m = {m});");
    println!(
        "exact law (Proposition 3): h(t = {m}, w = {m}, b = {})\n",
        n - m
    );

    let algorithms: [(&str, EntrySampler); 4] = [
        (
            "Algorithm 3 (sequential)",
            Box::new(move |seed| {
                let mut rng = Pcg64::seed_from_u64(seed);
                sample_sequential(&mut rng, &vec![m; p], &vec![m; p]).get(0, 0)
            }),
        ),
        (
            "Algorithm 4 (recursive)",
            Box::new(move |seed| {
                let mut rng = Pcg64::seed_from_u64(seed);
                sample_recursive(&mut rng, &vec![m; p], &vec![m; p]).get(0, 0)
            }),
        ),
        (
            "Algorithm 5 (parallel, log factor)",
            Box::new(move |seed| {
                let mut machine = CgmMachine::new(CgmConfig::new(p).with_seed(seed));
                sample_parallel_log(&mut machine, &vec![m; p], &vec![m; p])
                    .0
                    .get(0, 0)
            }),
        ),
        (
            "Algorithm 6 (parallel, cost-optimal)",
            Box::new(move |seed| {
                let mut machine = CgmMachine::new(CgmConfig::new(p).with_seed(seed));
                sample_parallel_optimal(&mut machine, &vec![m; p], &vec![m; p])
                    .0
                    .get(0, 0)
            }),
        ),
    ];

    for (name, sampler) in &algorithms {
        // The parallel algorithms spin up a machine per sample, so cap their
        // sample count to keep the example snappy.
        let reps = if name.contains("parallel") {
            samples.min(3_000)
        } else {
            samples
        };
        let mut counts = vec![0u64; (marginal.support_max() + 1) as usize];
        for seed in 0..reps {
            counts[sampler(seed) as usize] += 1;
        }
        println!("{name} ({reps} samples)");
        println!("  k   observed   expected");
        for k in marginal.support_min()..=marginal.support_max() {
            let expected = marginal.pmf(k) * reps as f64;
            if expected < 0.5 && counts[k as usize] == 0 {
                continue;
            }
            println!(
                "  {k:>2} {:>9} {:>10.1}  {}",
                counts[k as usize],
                expected,
                "*".repeat((counts[k as usize] * 40 / reps.max(1)) as usize)
            );
        }
        println!();
    }
}
