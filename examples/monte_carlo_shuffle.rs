//! Statistical testing — the paper's other motivating uses: "good generation
//! of random samples to test algorithms", "statistical tests".
//!
//! The example runs a permutation test: given two samples A and B, decide
//! whether their means differ significantly by repeatedly permuting the
//! pooled data with the coarse grained permuter and recomputing the mean
//! difference.  Reproducibility across runs is guaranteed by the single
//! master seed, regardless of the number of virtual processors.
//!
//! ```text
//! cargo run --release --example monte_carlo_shuffle [rounds]
//! ```

use std::env;

use cgp::{Permuter, RandomExt, SeedSequence};

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn main() {
    let rounds: usize = env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000);

    // Two synthetic samples whose means differ by a small amount.
    let seeds = SeedSequence::new(99);
    let mut gen = seeds.named_stream("data");
    let group_a: Vec<f64> = (0..400).map(|_| gen.gen_f64() * 10.0).collect();
    let group_b: Vec<f64> = (0..400).map(|_| gen.gen_f64() * 10.0 + 0.45).collect();
    let observed = mean(&group_b) - mean(&group_a);

    // Pool the data, encode the group sizes, and repeatedly shuffle.
    let pooled: Vec<u64> = group_a
        .iter()
        .chain(group_b.iter())
        .map(|&x| x.to_bits())
        .collect();
    let split = group_a.len();

    let permuter = Permuter::new(4).seed(123);
    let mut at_least_as_extreme = 0usize;
    for round in 0..rounds {
        // A fresh seed per round keeps rounds independent but reproducible.
        let permuter = permuter.clone().seed(123 + round as u64);
        let (shuffled, _) = permuter.permute(pooled.clone());
        let a: Vec<f64> = shuffled[..split]
            .iter()
            .map(|&b| f64::from_bits(b))
            .collect();
        let b: Vec<f64> = shuffled[split..]
            .iter()
            .map(|&b| f64::from_bits(b))
            .collect();
        let diff = mean(&b) - mean(&a);
        if diff.abs() >= observed.abs() {
            at_least_as_extreme += 1;
        }
    }
    let p_value = (at_least_as_extreme as f64 + 1.0) / (rounds as f64 + 1.0);

    println!("permutation test with {rounds} shuffles of 800 pooled observations");
    println!("observed mean difference : {observed:.4}");
    println!("permutation p-value      : {p_value:.4}");
    if p_value < 0.05 {
        println!("=> the group difference is unlikely to be a shuffling artefact");
    } else {
        println!("=> the observed difference is consistent with chance");
    }
}
