//! Figure 1 of the paper: "A vector and a permuted copy distributed on 6
//! processors".
//!
//! The example builds the same picture in ASCII: an input vector of 60 items
//! split into six (deliberately uneven) blocks, the sampled communication
//! matrix that says how many items travel between every pair of blocks, and
//! the permuted copy distributed into six target blocks.
//!
//! ```text
//! cargo run --example figure1_blocks
//! ```

use cgp::{permute_blocks, CgmConfig, CgmMachine, PermuteOptions};

fn bar(len: usize, fill: char) -> String {
    std::iter::repeat_n(fill, len).collect()
}

fn main() {
    // Six processors with uneven source blocks (the figure shows blocks of
    // different widths) and the same total redistributed into six target
    // blocks of different sizes.
    let source_sizes = [6usize, 14, 9, 11, 8, 12];
    let target_sizes = [10u64, 10, 10, 10, 10, 10];
    let n: usize = source_sizes.iter().sum();

    println!("Figure 1 — a vector v and a permuted copy v' on 6 processors\n");
    println!("source vector v (block B_i of size m_i per processor P_i):");
    let mut start = 0usize;
    for (i, &m) in source_sizes.iter().enumerate() {
        println!(
            "  P{i}  |{}|  m_{i} = {m:>2}   items {start:>2}..{}",
            bar(m, '#'),
            start + m
        );
        start += m;
    }

    // Build the blocks holding the items 0..n.
    let mut blocks: Vec<Vec<u64>> = Vec::new();
    let mut next = 0u64;
    for &m in &source_sizes {
        blocks.push((next..next + m as u64).collect());
        next += m as u64;
    }

    let machine = CgmMachine::new(CgmConfig::new(source_sizes.len()).with_seed(1));
    let options = PermuteOptions::default()
        .keep_matrix()
        .target_sizes(target_sizes.to_vec());
    let (permuted, report) = permute_blocks(&machine, blocks, &options);

    let matrix = report.matrix.expect("matrix was requested");
    println!("\ncommunication matrix A = (a_ij)  (row i: items leaving P_i for P'_j):\n");
    print!("      ");
    for j in 0..target_sizes.len() {
        print!("  P'{j} ");
    }
    println!();
    for i in 0..source_sizes.len() {
        print!("  P{i}  ");
        for j in 0..target_sizes.len() {
            print!("{:>5} ", matrix.get(i, j));
        }
        println!("   Σ = {}", matrix.row_sum(i));
    }
    print!("   Σ  ");
    for j in 0..target_sizes.len() {
        print!("{:>5} ", matrix.col_sum(j));
    }
    println!("\n");

    println!("permuted copy v' (block B'_j of size m'_j per processor P'_j):");
    for (j, block) in permuted.iter().enumerate() {
        println!(
            "  P'{j} |{}|  m'_{j} = {:>2}",
            bar(block.len(), '#'),
            block.len()
        );
    }

    println!("\nfirst block of v' in detail (items carried over from various P_i):");
    println!("  P'0 holds {:?}", permuted[0]);

    // Show which source block each item of P'0 came from.
    let origin = |item: u64| -> usize {
        let mut acc = 0u64;
        for (i, &m) in source_sizes.iter().enumerate() {
            acc += m as u64;
            if item < acc {
                return i;
            }
        }
        unreachable!()
    };
    let origins: Vec<usize> = permuted[0].iter().map(|&x| origin(x)).collect();
    println!("  origin processors of those items: {origins:?}");
    println!(
        "\ntotal items: {n}; every permutation of them into the target blocks is equally likely."
    );
}
