//! Statistical uniformity tests of the full parallel algorithm (Theorem 1)
//! and the contrast with the non-uniform baseline (experiment E5/E7 in
//! miniature).
//!
//! All tests use fixed seeds and generous significance levels so they are
//! deterministic and non-flaky.

use cgp::core::baselines::one_round_permutation;
use cgp::core::uniformity::{recommended_samples, test_uniformity};
use cgp::{permute_vec, CgmConfig, CgmMachine, MatrixBackend, PermuteOptions};

/// Generates one permutation of `0..n` with Algorithm 1 on `p` processors.
fn algorithm1_permutation(n: usize, p: usize, backend: MatrixBackend, seed: u64) -> Vec<u64> {
    let machine = CgmMachine::new(CgmConfig::new(p).with_seed(seed));
    permute_vec(
        &machine,
        (0..n as u64).collect(),
        &PermuteOptions::with_backend(backend),
    )
    .0
}

#[test]
fn algorithm1_is_uniform_with_the_sequential_matrix_backend() {
    let n = 4;
    let samples = recommended_samples(n, 300);
    let report = test_uniformity(n, samples, |rep| {
        algorithm1_permutation(n, 2, MatrixBackend::Sequential, rep)
    });
    assert!(
        report.is_uniform_at(0.001),
        "Algorithm 1 (sequential matrix) failed uniformity: {:?}",
        report.chi_square
    );
    assert!(report.covers_all_permutations());
}

#[test]
fn algorithm1_is_uniform_with_the_recursive_matrix_backend() {
    let n = 4;
    let samples = recommended_samples(n, 300);
    let report = test_uniformity(n, samples, |rep| {
        algorithm1_permutation(n, 2, MatrixBackend::Recursive, 1_000_000 + rep)
    });
    assert!(
        report.is_uniform_at(0.001),
        "Algorithm 1 (recursive matrix) failed uniformity: {:?}",
        report.chi_square
    );
}

#[test]
fn algorithm1_is_uniform_with_the_cost_optimal_parallel_backend() {
    // Smaller sample count: each sample spins up a machine twice (matrix +
    // exchange), so this is the most expensive uniformity test.
    let n = 4;
    let samples = recommended_samples(n, 150);
    let report = test_uniformity(n, samples, |rep| {
        algorithm1_permutation(n, 2, MatrixBackend::ParallelOptimal, 2_000_000 + rep)
    });
    assert!(
        report.is_uniform_at(0.001),
        "Algorithm 1 (Algorithm 6 matrix) failed uniformity: {:?}",
        report.chi_square
    );
}

#[test]
fn algorithm1_is_uniform_on_three_processors_with_uneven_blocks() {
    // n = 5 over p = 3 processors: blocks of 2, 2, 1 — exercises the uneven
    // case end to end.
    let n = 5;
    let samples = recommended_samples(n, 60);
    let report = test_uniformity(n, samples, |rep| {
        algorithm1_permutation(n, 3, MatrixBackend::Sequential, 3_000_000 + rep)
    });
    assert!(
        report.is_uniform_at(0.001),
        "uneven-block case failed uniformity: {:?}",
        report.chi_square
    );
}

#[test]
fn fixed_matrix_baseline_is_detectably_non_uniform_while_algorithm1_is_not() {
    // Head-to-head on identical sample counts: the fixed-matrix baseline must
    // fail the same test Algorithm 1 passes.
    let n = 4;
    let samples = recommended_samples(n, 250);

    let baseline = test_uniformity(n, samples, |rep| {
        let machine = CgmMachine::new(CgmConfig::new(2).with_seed(4_000_000 + rep));
        let blocks = vec![vec![0u64, 1], vec![2u64, 3]];
        let (out, _) = one_round_permutation(&machine, blocks, 1);
        out.into_iter().flatten().collect()
    });
    let algorithm1 = test_uniformity(n, samples, |rep| {
        algorithm1_permutation(n, 2, MatrixBackend::Sequential, 5_000_000 + rep)
    });

    assert!(
        !baseline.is_uniform_at(0.001),
        "baseline unexpectedly uniform"
    );
    assert!(
        algorithm1.is_uniform_at(0.001),
        "Algorithm 1 unexpectedly non-uniform"
    );
    assert!(
        baseline.chi_square.statistic > 10.0 * algorithm1.chi_square.statistic,
        "expected a large separation between baseline ({}) and Algorithm 1 ({})",
        baseline.chi_square.statistic,
        algorithm1.chi_square.statistic
    );
}

#[test]
fn communication_matrix_entries_follow_the_hypergeometric_law_end_to_end() {
    // Run the full pipeline (not just the matrix sampler) and check the
    // realized a_00 against Proposition 3 with a chi-square test.
    use cgp::stats::chi_square_test;
    use cgp::Hypergeometric;

    let p = 2usize;
    let m = 6u64;
    let n = m * p as u64;
    let h = Hypergeometric::new(m, m, n - m);
    let reps = 6_000u64;
    let mut counts = vec![0u64; (h.support_max() + 1) as usize];
    for rep in 0..reps {
        let machine = CgmMachine::new(CgmConfig::new(p).with_seed(6_000_000 + rep));
        let (_, report) = permute_vec(
            &machine,
            (0..n).collect(),
            &PermuteOptions::default().keep_matrix(),
        );
        let matrix = report.matrix.unwrap();
        counts[matrix.get(0, 0) as usize] += 1;
    }
    let expected: Vec<f64> = (0..counts.len() as u64)
        .map(|k| h.pmf(k) * reps as f64)
        .collect();
    let outcome = chi_square_test(&counts, &expected, 0);
    assert!(
        outcome.is_consistent_at(0.001),
        "end-to-end matrix distribution off: {outcome:?}"
    );
}
