//! Cross-crate integration tests: the full Algorithm 1 pipeline on the CGM
//! simulator, checked against the invariants the paper states.

use cgp::{
    permute_blocks, permute_vec, BlockDistribution, CgmConfig, CgmMachine, CommMatrix,
    MatrixBackend, PermuteOptions, Permuter,
};

fn assert_is_permutation(out: &[u64], n: u64) {
    let mut sorted = out.to_vec();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..n).collect::<Vec<u64>>());
}

#[test]
fn every_backend_produces_a_permutation_on_every_machine_size() {
    for p in [1usize, 2, 3, 5, 8] {
        for backend in MatrixBackend::ALL {
            let machine = CgmMachine::new(CgmConfig::new(p).with_seed(p as u64 * 31));
            let n = 240u64;
            let (out, report) = permute_vec(
                &machine,
                (0..n).collect(),
                &PermuteOptions::with_backend(backend),
            );
            assert_is_permutation(&out, n);
            assert_eq!(report.backend, backend);
        }
    }
}

#[test]
fn reported_matrix_matches_the_realized_data_movement() {
    // The matrix the algorithm samples must be exactly the a-posteriori
    // communication matrix of the permutation it produces.
    let p = 5usize;
    let machine = CgmMachine::new(CgmConfig::new(p).with_seed(77));
    let sizes = vec![10u64, 20, 5, 30, 15];
    let dist = BlockDistribution::from_sizes(sizes.clone());
    let n = dist.total();
    let blocks = dist.split_vec((0..n).collect());
    let options = PermuteOptions::default().keep_matrix();
    let (out_blocks, report) = permute_blocks(&machine, blocks, &options);
    let sampled = report.matrix.expect("matrix kept");

    // Reconstruct the permutation: item value v (originally at global
    // position v) ended up at some global target position.
    let out_dist =
        BlockDistribution::from_sizes(out_blocks.iter().map(|b| b.len() as u64).collect());
    let flat: Vec<u64> = out_blocks.into_iter().flatten().collect();
    let mut target_position = vec![0u64; n as usize];
    for (pos, &item) in flat.iter().enumerate() {
        target_position[item as usize] = pos as u64;
    }
    let realized = CommMatrix::from_permutation(&target_position, &dist, &out_dist);
    assert_eq!(
        sampled, realized,
        "sampled matrix and realized data movement differ"
    );
}

#[test]
fn exchange_volume_matches_theorem_1_bound() {
    // Theorem 1: O(m) words per processor.  With equal blocks of size m the
    // exchange volume of each processor is exactly 2m (m sent + m received).
    let p = 6usize;
    let m = 300u64;
    let machine = CgmMachine::new(CgmConfig::new(p).with_seed(5));
    let data: Vec<u64> = (0..m * p as u64).collect();
    let (_, report) = permute_vec(&machine, data, &PermuteOptions::default());
    for proc in &report.exchange_metrics.per_proc {
        assert_eq!(proc.comm_volume(), 2 * m);
    }
    // Exactly one all-to-all: at most p-1 real messages per processor.
    for proc in &report.exchange_metrics.per_proc {
        assert!(proc.messages_sent <= (p - 1) as u64);
    }
}

#[test]
fn parallel_matrix_backends_agree_with_sequential_marginals() {
    // Sample matrices with the parallel backends and verify the marginals and
    // the hypergeometric mean of an entry (Proposition 3) in aggregate.
    use cgp::hypergeom::hypergeometric_mean;
    let p = 8usize;
    let m = 40u64;
    let source = vec![m; p];
    let target = vec![m; p];
    let n = m * p as u64;
    let reps = 300u64;
    let mut total_a00 = [0u64; 2];
    for rep in 0..reps {
        let mut machine = CgmMachine::new(CgmConfig::new(p).with_seed(rep));
        let (a, _) = cgp::sample_parallel_log(&mut machine, &source, &target);
        a.check_marginals(&source, &target).unwrap();
        total_a00[0] += a.get(0, 0);
        let (b, _) = cgp::sample_parallel_optimal(&mut machine, &source, &target);
        b.check_marginals(&source, &target).unwrap();
        total_a00[1] += b.get(0, 0);
    }
    let expect = hypergeometric_mean(m, m, n - m);
    for (idx, total) in total_a00.iter().enumerate() {
        let mean = *total as f64 / reps as f64;
        assert!(
            (mean - expect).abs() < 1.5,
            "backend {idx}: mean a_00 = {mean}, expected {expect}"
        );
    }
}

#[test]
fn permuter_reuse_and_report_consistency() {
    let permuter = Permuter::new(4)
        .seed(11)
        .backend(MatrixBackend::ParallelOptimal)
        .keep_matrix();
    for n in [0usize, 1, 7, 64, 1000] {
        let (out, report) = permuter.permute((0..n as u64).collect());
        assert_is_permutation(&out, n as u64);
        let matrix = report.matrix.as_ref().expect("kept");
        assert_eq!(matrix.total(), n as u64);
        assert!(report.total_elapsed() >= report.matrix_elapsed);
    }
}

#[test]
fn skewed_block_distributions_are_handled() {
    // One processor holds almost everything; the algorithm must still work
    // and the target sizes must be respected.
    let machine = CgmMachine::new(CgmConfig::new(4).with_seed(3));
    let blocks = vec![
        (0..97u64).collect::<Vec<_>>(),
        vec![97u64],
        vec![98u64],
        vec![99u64],
    ];
    let options = PermuteOptions::default().target_sizes(vec![25, 25, 25, 25]);
    let (out, _) = permute_blocks(&machine, blocks, &options);
    assert!(out.iter().all(|b| b.len() == 25));
    let mut all: Vec<u64> = out.into_iter().flatten().collect();
    all.sort_unstable();
    assert_eq!(all, (0..100).collect::<Vec<u64>>());
}

#[test]
fn baselines_also_produce_permutations() {
    use cgp::core::baselines::{
        one_round_permutation, rejection_permutation, sort_based_permutation,
    };
    let p = 4usize;
    let n = 160u64;
    let dist = BlockDistribution::even(n, p);

    let machine = CgmMachine::new(CgmConfig::new(p).with_seed(13));
    let (sorted_blocks, _) = sort_based_permutation(&machine, dist.split_vec((0..n).collect()));
    let flat: Vec<u64> = sorted_blocks.into_iter().flatten().collect();
    assert_is_permutation(&flat, n);

    let (round_blocks, _) = one_round_permutation(&machine, dist.split_vec((0..n).collect()), 2);
    let flat: Vec<u64> = round_blocks.into_iter().flatten().collect();
    assert_is_permutation(&flat, n);

    let outcome = rejection_permutation(
        &machine,
        dist.split_vec((0..n).collect()),
        dist.sizes(),
        1_000_000,
    )
    .expect("moderate sizes accept eventually");
    let flat: Vec<u64> = outcome.blocks.into_iter().flatten().collect();
    assert_is_permutation(&flat, n);
}
