//! Workspace smoke test: one end-to-end assertion on the advertised API,
//! independent of the per-crate suites. If this passes, the facade crate,
//! the CGM simulator, the matrix samplers and Algorithm 1 are all wired
//! together correctly.

use cgp::{
    apply_permutation, permute_vec, CgmConfig, CgmMachine, MatrixBackend, PermuteOptions,
    PermuteScratch, Permuter, ResidentCgm,
};

#[test]
fn permute_vec_round_trips_and_is_deterministic() {
    let machine = CgmMachine::new(CgmConfig::new(8).with_seed(42));
    let options = PermuteOptions::with_backend(MatrixBackend::ParallelOptimal);
    let data: Vec<u64> = (0..10_000).collect();

    let (out, report) = permute_vec(&machine, data.clone(), &options);

    // Output is a permutation of the input (same multiset, same length).
    let mut sorted = out.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, data, "output must be a permutation of the input");
    // With n = 10_000 the identity permutation has probability 1/n!.
    assert_ne!(out, data, "a uniform permutation is not the identity");
    // Theorem 1 balance: every processor's exchange volume stays O(n/p).
    assert!(report.max_exchange_volume() <= 2 * 10_000 / 8 + 16);

    // Deterministic under a fixed machine seed.
    let (again, _) = permute_vec(&machine, data.clone(), &options);
    assert_eq!(out, again, "same seed must reproduce the same permutation");

    // A different seed gives a different permutation.
    let other = CgmMachine::new(CgmConfig::new(8).with_seed(43));
    let (different, _) = permute_vec(&other, data.clone(), &options);
    assert_ne!(out, different, "different seeds must diverge");
}

#[test]
fn permuter_facade_round_trips_every_backend() {
    for backend in MatrixBackend::ALL {
        let permuter = Permuter::new(4).seed(7).backend(backend);
        let data: Vec<u64> = (0..1_000).collect();
        let (shuffled, _report) = permuter.permute(data.clone());
        let mut sorted = shuffled;
        sorted.sort_unstable();
        assert_eq!(sorted, data, "backend {backend:?} must permute losslessly");
    }
}

#[test]
fn exchange_is_move_based_so_clone_is_not_required() {
    // A payload that is Send but NOT Clone flows through the advertised API.
    #[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
    struct Receipt(Box<u64>);
    let permuter = Permuter::new(4).seed(3);
    let data: Vec<Receipt> = (0..800).map(|i| Receipt(Box::new(i))).collect();
    let (mut out, _) = permuter.permute(data);
    out.sort();
    assert_eq!(
        out,
        (0..800).map(|i| Receipt(Box::new(i))).collect::<Vec<_>>()
    );
}

#[test]
fn resident_session_matches_the_one_shot_path_and_recovers_from_panics() {
    // The steady-state tier: a resident worker pool + recycled buffers.
    let permuter = Permuter::new(4).seed(2024);
    let reference = permuter.permute((0..2_000u64).collect()).0;
    let mut session = permuter.session::<u64>();
    for round in 0..5 {
        let (out, report) = session.permute((0..2_000u64).collect());
        assert_eq!(out, reference, "round {round} diverged from one-shot");
        assert!(report.max_exchange_volume() <= 2 * 2_000 / 4);
    }
    session.shutdown();

    // The pool underneath survives a panicking job and names the culprit.
    let mut pool: ResidentCgm<u64> = ResidentCgm::new(CgmConfig::new(3).with_seed(1));
    let err = pool
        .try_run(|ctx| {
            if ctx.id() == 1 {
                panic!("smoke-test failure injection");
            }
            ctx.comm_mut().barrier();
        })
        .unwrap_err();
    assert!(err.to_string().contains("virtual processor 1"));
    let ok = pool.run(|ctx| ctx.id() as u64).into_results();
    assert_eq!(ok, vec![0, 1, 2], "the pool is usable after a panicked job");
}

#[test]
fn permute_into_reuses_buffers_and_matches_the_one_shot_path() {
    let permuter = Permuter::new(8)
        .seed(42)
        .backend(MatrixBackend::ParallelOptimal);
    let reference = permuter.permute((0..5_000u64).collect()).0;

    let mut scratch = PermuteScratch::new();
    for round in 0..3 {
        let mut data: Vec<u64> = (0..5_000).collect();
        let report = permuter.permute_into(&mut data, &mut scratch);
        assert_eq!(data, reference, "round {round} diverged from permute()");
        assert!(report.max_exchange_volume() <= 2 * 5_000 / 8 + 16);
    }
    assert!(scratch.retained_capacity() >= 5_000);
}

#[test]
fn index_permutation_fast_path_round_trips() {
    // Sample once in parallel, gather locally — for payloads that cannot or
    // should not travel through the exchange.
    let permuter = Permuter::new(4).seed(11);
    let perm = permuter.sample_permutation(1_000);
    let payload: Vec<String> = (0..1_000).map(|i| format!("row-{i}")).collect();
    let gathered = apply_permutation(&perm, payload.clone());
    let mut sorted = gathered.clone();
    sorted.sort();
    let mut expected = payload;
    expected.sort();
    assert_eq!(sorted, expected);
    assert_eq!(
        gathered,
        apply_permutation(&perm, (0..1_000).map(|i| format!("row-{i}")).collect()),
        "the gather is deterministic in the sampled permutation"
    );
}
