//! Workspace smoke test: one end-to-end assertion on the advertised API,
//! independent of the per-crate suites. If this passes, the facade crate,
//! the CGM simulator, the matrix samplers and Algorithm 1 are all wired
//! together correctly.

use cgp::{permute_vec, CgmConfig, CgmMachine, MatrixBackend, PermuteOptions, Permuter};

#[test]
fn permute_vec_round_trips_and_is_deterministic() {
    let machine = CgmMachine::new(CgmConfig::new(8).with_seed(42));
    let options = PermuteOptions::with_backend(MatrixBackend::ParallelOptimal);
    let data: Vec<u64> = (0..10_000).collect();

    let (out, report) = permute_vec(&machine, data.clone(), &options);

    // Output is a permutation of the input (same multiset, same length).
    let mut sorted = out.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, data, "output must be a permutation of the input");
    // With n = 10_000 the identity permutation has probability 1/n!.
    assert_ne!(out, data, "a uniform permutation is not the identity");
    // Theorem 1 balance: every processor's exchange volume stays O(n/p).
    assert!(report.max_exchange_volume() <= 2 * 10_000 / 8 + 16);

    // Deterministic under a fixed machine seed.
    let (again, _) = permute_vec(&machine, data.clone(), &options);
    assert_eq!(out, again, "same seed must reproduce the same permutation");

    // A different seed gives a different permutation.
    let other = CgmMachine::new(CgmConfig::new(8).with_seed(43));
    let (different, _) = permute_vec(&other, data.clone(), &options);
    assert_ne!(out, different, "different seeds must diverge");
}

#[test]
fn permuter_facade_round_trips_every_backend() {
    for backend in MatrixBackend::ALL {
        let permuter = Permuter::new(4).seed(7).backend(backend);
        let data: Vec<u64> = (0..1_000).collect();
        let (shuffled, _report) = permuter.permute(data.clone());
        let mut sorted = shuffled;
        sorted.sort_unstable();
        assert_eq!(sorted, data, "backend {backend:?} must permute losslessly");
    }
}
