//! Property-based tests (proptest) for the cross-crate invariants.

use proptest::prelude::*;

use cgp::{
    apply_permutation, permute_blocks, sample_recursive, sample_sequential, BlockDistribution,
    CgmConfig, CgmMachine, CommMatrix, MatrixBackend, Pcg64, PermuteOptions, Permuter, RandomExt,
};

/// A payload that is `Send` but **not** `Clone` (and not `Copy`): the
/// move-based exchange must ship it through unchanged, one move per item.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct UniqueToken(Box<u64>);

/// Strategy: a vector of small block sizes (1..=6 blocks, sizes 0..=20).
fn block_sizes() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..=20, 1..=6)
}

/// Strategy: two block-size vectors with equal totals, built by generating
/// the source sizes and a number of cut points for the target side.
fn matching_distributions() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    (block_sizes(), 1usize..=6, any::<u64>()).prop_map(|(source, target_blocks, seed)| {
        let total: u64 = source.iter().sum();
        // Deterministically spread `total` over `target_blocks` buckets using
        // the seed, so the pair is reproducible from the proptest case.
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut target = vec![0u64; target_blocks];
        for _ in 0..total {
            let j = rng.gen_index(target_blocks);
            target[j] += 1;
        }
        (source, target)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Equations (2) and (3): sampled matrices always carry the prescribed
    /// marginals, for both sequential samplers.
    #[test]
    fn sampled_matrices_have_correct_marginals(
        (source, target) in matching_distributions(),
        seed in any::<u64>(),
    ) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let a = sample_sequential(&mut rng, &source, &target);
        prop_assert!(a.check_marginals(&source, &target).is_ok());
        let b = sample_recursive(&mut rng, &source, &target);
        prop_assert!(b.check_marginals(&source, &target).is_ok());
    }

    /// Proposition 4 (self-similarity): coarsening a sampled matrix by
    /// joining consecutive blocks yields a matrix whose marginals are the
    /// joined block sizes.
    #[test]
    fn coarsened_matrices_have_joined_marginals(
        (source, target) in matching_distributions(),
        seed in any::<u64>(),
        row_cut_fraction in 0.1f64..0.9,
        col_cut_fraction in 0.1f64..0.9,
    ) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let a = sample_sequential(&mut rng, &source, &target);
        let row_cut = ((source.len() as f64 * row_cut_fraction).ceil() as usize)
            .clamp(1, source.len());
        let col_cut = ((target.len() as f64 * col_cut_fraction).ceil() as usize)
            .clamp(1, target.len());
        let row_cuts = if row_cut == source.len() {
            vec![0, source.len()]
        } else {
            vec![0, row_cut, source.len()]
        };
        let col_cuts = if col_cut == target.len() {
            vec![0, target.len()]
        } else {
            vec![0, col_cut, target.len()]
        };
        let coarse = a.coarsen(&row_cuts, &col_cuts);
        // Marginals of the coarse matrix = sums of the joined fine blocks.
        let coarse_source: Vec<u64> = row_cuts.windows(2)
            .map(|w| source[w[0]..w[1]].iter().sum())
            .collect();
        let coarse_target: Vec<u64> = col_cuts.windows(2)
            .map(|w| target[w[0]..w[1]].iter().sum())
            .collect();
        prop_assert!(coarse.check_marginals(&coarse_source, &coarse_target).is_ok());
        prop_assert_eq!(coarse.total(), a.total());
    }

    /// The full parallel permutation always outputs a permutation of its
    /// input, whatever the block structure, backend and seed.
    #[test]
    fn parallel_permutation_preserves_the_multiset(
        sizes in prop::collection::vec(0u64..=15, 1..=5),
        backend_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        let backend = MatrixBackend::ALL[backend_idx];
        let p = sizes.len();
        let machine = CgmMachine::new(CgmConfig::new(p).with_seed(seed));
        let dist = BlockDistribution::from_sizes(sizes.clone());
        let n = dist.total();
        let blocks = dist.split_vec((0..n).collect());
        let (out, report) = permute_blocks(
            &machine,
            blocks,
            &PermuteOptions::with_backend(backend).keep_matrix(),
        );
        // Same multiset.
        let mut flat: Vec<u64> = out.iter().flatten().copied().collect();
        flat.sort_unstable();
        prop_assert_eq!(flat, (0..n).collect::<Vec<u64>>());
        // Block sizes preserved (no explicit target sizes were given).
        let out_sizes: Vec<u64> = out.iter().map(|b| b.len() as u64).collect();
        prop_assert_eq!(&out_sizes, &sizes);
        // The kept matrix is consistent with those sizes.
        let matrix = report.matrix.unwrap();
        prop_assert!(matrix.check_marginals(&sizes, &out_sizes).is_ok());
    }

    /// The move-based exchange preserves the multiset for a payload type
    /// that is `Send` but not `Clone`: every token comes out exactly once,
    /// whatever the block structure, backend and seed.
    #[test]
    fn move_based_exchange_preserves_non_clone_payloads(
        sizes in prop::collection::vec(0u64..=12, 1..=5),
        backend_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        let backend = MatrixBackend::ALL[backend_idx];
        let p = sizes.len();
        let machine = CgmMachine::new(CgmConfig::new(p).with_seed(seed));
        let dist = BlockDistribution::from_sizes(sizes.clone());
        let n = dist.total();
        let tokens: Vec<UniqueToken> = (0..n).map(|i| UniqueToken(Box::new(i))).collect();
        let blocks = dist.split_vec(tokens);
        let (out, _) = permute_blocks(
            &machine,
            blocks,
            &PermuteOptions::with_backend(backend),
        );
        let mut flat: Vec<UniqueToken> = out.into_iter().flatten().collect();
        flat.sort();
        let expected: Vec<UniqueToken> = (0..n).map(|i| UniqueToken(Box::new(i))).collect();
        prop_assert_eq!(flat, expected);
    }

    /// The index-permutation fast path agrees with shipping the payloads
    /// through the exchange directly: sampling indices and gathering locally
    /// induces the very same rearrangement.
    #[test]
    fn index_fast_path_matches_direct_exchange(
        n in 0usize..=200,
        procs in 1usize..=5,
        seed in any::<u64>(),
    ) {
        let permuter = Permuter::new(procs).seed(seed);
        let perm = permuter.sample_permutation(n);
        let direct: Vec<u64> = permuter.permute((0..n as u64).collect()).0;
        let gathered = apply_permutation(&perm, (0..n as u64).collect());
        prop_assert_eq!(gathered, direct);
    }

    /// The a-posteriori matrix of any permutation satisfies the marginal
    /// equations, and coarsening it to a single block gives the total.
    #[test]
    fn a_posteriori_matrix_is_always_consistent(
        sizes in prop::collection::vec(1u64..=10, 1..=5),
        seed in any::<u64>(),
    ) {
        let dist = BlockDistribution::from_sizes(sizes.clone());
        let n = dist.total();
        let mut rng = Pcg64::seed_from_u64(seed);
        let perm = rng.random_permutation(n as usize);
        let perm64: Vec<u64> = perm.iter().map(|&x| x as u64).collect();
        let matrix = CommMatrix::from_permutation(&perm64, &dist, &dist);
        prop_assert!(matrix.check_marginals(&sizes, &sizes).is_ok());
        let whole = matrix.coarsen(&[0, sizes.len()], &[0, sizes.len()]);
        prop_assert_eq!(whole.get(0, 0), n);
    }

    /// Hypergeometric sampling always lands in the support, whatever the
    /// parameters.
    #[test]
    fn hypergeometric_samples_stay_in_support(
        white in 0u64..=5_000,
        black in 0u64..=5_000,
        draw_fraction in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let population = white + black;
        let draws = (population as f64 * draw_fraction).floor() as u64;
        let h = cgp::Hypergeometric::new(draws, white, black);
        let mut rng = Pcg64::seed_from_u64(seed);
        let k = h.sample(&mut rng);
        prop_assert!(k >= h.support_min());
        prop_assert!(k <= h.support_max());
    }

    /// Multivariate hypergeometric splits respect the component caps and the
    /// total, for both the iterative and the recursive variants.
    #[test]
    fn multivariate_splits_respect_caps(
        weights in prop::collection::vec(0u64..=30, 1..=8),
        draw_fraction in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        use cgp::hypergeom::{multivariate_hypergeometric, multivariate_hypergeometric_recursive};
        let total: u64 = weights.iter().sum();
        let m = (total as f64 * draw_fraction).floor() as u64;
        let mut rng = Pcg64::seed_from_u64(seed);
        for alpha in [
            multivariate_hypergeometric(&mut rng, m, &weights),
            multivariate_hypergeometric_recursive(&mut rng, m, &weights),
        ] {
            prop_assert_eq!(alpha.iter().sum::<u64>(), m);
            for (a, w) in alpha.iter().zip(&weights) {
                prop_assert!(a <= w);
            }
        }
    }
}

/// Regression for the rectangular-`target_sizes` failure mode: prescribing a
/// target-size count that differs from the processor count used to trip an
/// `assert_eq!` *inside the worker threads* (a cross-thread panic out of
/// `machine.run`); it must now fail fast on the calling thread with a clear
/// message, before the machine starts.
#[test]
#[should_panic(expected = "one target block per processor")]
fn rectangular_target_sizes_fail_with_a_clear_message() {
    let machine = CgmMachine::new(CgmConfig::new(2).with_seed(1));
    let options = PermuteOptions::default().target_sizes(vec![2, 1, 1]);
    let _ = permute_blocks(&machine, vec![vec![1u64, 2], vec![3u64, 4]], &options);
}
