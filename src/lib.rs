//! # cgp — randomized permutations in a coarse grained parallel environment
//!
//! A Rust reproduction of Jens Gustedt's *"Randomized Permutations in a
//! Coarse Grained Parallel Environment"* (INRIA research report RR-4639,
//! presented at SPAA 2003): a work-optimal, balanced and provably uniform
//! algorithm for generating random permutations of block-distributed data on
//! a coarse grained parallel machine.
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`rng`] (`cgp-rng`) | deterministic, splittable, draw-counting generators |
//! | [`hypergeom`] (`cgp-hypergeom`) | hypergeometric and multivariate hypergeometric laws and samplers |
//! | [`cgm`] (`cgp-cgm`) | the coarse grained machine simulator (virtual processors, supersteps, metered communication) |
//! | [`matrix`] (`cgp-matrix`) | communication-matrix sampling, Algorithms 3–6 |
//! | [`core`] (`cgp-core`) | Algorithm 1 (the parallel random permutation), the sequential reference and the baselines |
//! | [`stats`] (`cgp-stats`) | chi-square / KS tests, permutation ranking, summaries |
//! | [`wire`] (`cgp-server`) | the socket front-end: [`wire::WireServer`] over UDS/TCP and the blocking [`wire::Client`] |
//!
//! ## Quick start
//!
//! ```
//! use cgp::{MatrixBackend, Permuter};
//!
//! // Uniformly permute integers over 8 virtual processors, sampling the
//! // communication matrix with the cost-optimal Algorithm 6.
//! let permuter = Permuter::new(8).seed(2024).backend(MatrixBackend::ParallelOptimal);
//! let data: Vec<u64> = (0..100_000).collect();
//! let (shuffled, report) = permuter.permute(data);
//!
//! assert_eq!(shuffled.len(), 100_000);
//! // Theorem 1: every processor's communication volume is O(m) = O(n/p).
//! assert!(report.max_exchange_volume() <= 2 * 100_000 / 8 + 16);
//! ```

pub use cgp_cgm as cgm;
pub use cgp_core as core;
pub use cgp_hypergeom as hypergeom;
pub use cgp_matrix as matrix;
pub use cgp_rng as rng;
pub use cgp_server as wire;
pub use cgp_stats as stats;

pub use cgp_cgm::{
    diag, BlockDistribution, CgmConfig, CgmError, CgmExecutor, CgmMachine, CostModel, MatrixCtx,
    ResidentCgm,
};
pub use cgp_core::{
    apply_permutation, bucketed_index_permutation, bucketed_shuffle, bucketed_shuffle_with,
    default_bucket_items, fisher_yates_shuffle, permute_blocks, permute_vec, permute_vec_into,
    permute_vec_into_with, sequential_random_permutation, serial_index_permutation,
    try_permute_vec_into_with, Algorithm, BucketScratch, CompletionSet, EngineConfig, JobTicket,
    LaneDepth, LocalShuffle, MatrixBackend, PermutationReport, PermutationService,
    PermutationSession, PermuteOptions, PermuteScratch, Permuter, Priority, RejectedJob,
    ServiceConfig, ServiceError, ServiceHandle, ServiceMetrics, TenantMetrics,
    DEFAULT_TARGET_FACTOR,
};
pub use cgp_hypergeom::Hypergeometric;
pub use cgp_matrix::{
    sample_parallel_log, sample_parallel_log_ctx, sample_parallel_optimal,
    sample_parallel_optimal_ctx, sample_recursive, sample_recursive_ctx, sample_sequential,
    sample_sequential_ctx, CommMatrix,
};
pub use cgp_rng::{CountingRng, Pcg64, RandomExt, RandomSource, SeedSequence};
