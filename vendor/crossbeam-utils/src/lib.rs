//! Minimal local shim for `crossbeam-utils`.
//!
//! Only `crossbeam_utils::thread::scope` is used by the workspace; since
//! Rust 1.63 the standard library's `std::thread::scope` provides the same
//! guarantee (borrowed data may cross thread boundaries because every thread
//! is joined before the scope returns), so the shim simply adapts the
//! crossbeam calling convention to it. See `vendor/README.md`.

pub mod thread {
    use std::thread as std_thread;

    /// The error half carries the panic payload of a child thread, exactly
    /// like `std::thread::Result`.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle passed to [`scope`]'s closure; spawned threads may
    /// borrow from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or its panic
        /// payload.
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope
        /// itself (crossbeam convention) so it could spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a [`Scope`]; returns once every spawned thread has been
    /// joined. A child panic that the caller already harvested through
    /// [`ScopedJoinHandle::join`] does not fail the scope, matching
    /// crossbeam's behaviour, so the result is `Ok` in that case.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn harvested_child_panic_is_reported_via_join() {
        let out = thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().is_err()
        })
        .unwrap();
        assert!(out);
    }
}
