//! Minimal local shim for the `rand` crate (0.8-compatible subset).
//!
//! The workspace only uses `rand` for interoperability: the generators in
//! `cgp-rng` implement [`RngCore`] so they can be plugged into third-party
//! code, and one test draws through [`Rng::gen_range`]. This shim provides
//! exactly that surface with `std` only. See `vendor/README.md`.

use std::fmt;
use std::ops::Range;

/// Error type for fallible generator operations.
///
/// The deterministic generators in this workspace never fail, so this type
/// is never constructed; it only exists so `try_fill_bytes` has the same
/// signature as the real crate.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core trait every random number generator implements.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A half-open range a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                // Modulo reduction: the bias is at most span / 2^64, which is
                // immaterial for the interop tests this shim serves.
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.gen_range(0..100)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Step(u64);

    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Step(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn fill_bytes_writes_every_byte() {
        let mut rng = Step(7);
        let mut buf = [0u8; 32];
        rng.try_fill_bytes(&mut buf).unwrap();
        assert!(buf.iter().any(|&b| b != 0));
    }
}
