//! Minimal local shim for `crossbeam-channel`.
//!
//! The CGM simulator only needs unbounded channels with cloneable senders
//! and a blocking `recv`, which `std::sync::mpsc` provides directly; this
//! shim wraps it under the `crossbeam-channel` names the code imports.
//! See `vendor/README.md`.

use std::sync::mpsc;
use std::time::Duration;

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

/// The sending half of an unbounded channel. Cloneable, so every producer
/// can hold its own handle.
pub struct Sender<T>(mpsc::Sender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Sends `value`, failing only if every [`Receiver`] was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0.send(value)
    }
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    /// Blocks until a message arrives, failing only once every [`Sender`]
    /// was dropped and the queue is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
        self.0.try_recv()
    }

    /// Blocks until a message arrives or `timeout` elapses, whichever comes
    /// first.  A message that arrives during the wait wakes the receiver
    /// immediately; the timeout only fires when the queue stays empty.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.0.recv_timeout(timeout)
    }
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_recv_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = unbounded();
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        ));
        tx.send(5u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)).unwrap(), 5);
        drop(tx);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        ));
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7u32).unwrap())
            .join()
            .unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(rx.recv().is_err(), "channel closes once senders are gone");
    }
}
