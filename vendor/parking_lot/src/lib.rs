//! Minimal local shim for `parking_lot`.
//!
//! The workspace uses `parking_lot::Mutex` purely for its ergonomic,
//! poison-free `lock()` (no `.unwrap()` at every call site). This shim keeps
//! that contract on top of `std::sync::Mutex` by recovering the guard when a
//! previous holder panicked. See `vendor/README.md`.

use std::sync;

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in a previous holder does not poison the
    /// lock — the data is handed over as-is, which matches `parking_lot`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Mutex::new(0u32);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock();
            panic!("poison attempt");
        }));
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
