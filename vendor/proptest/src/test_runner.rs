//! The case runner's configuration and deterministic generator.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the suite fast while
        // still exercising each property across a spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so every property has its own
    /// reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from the inclusive span `[0, span_minus_one]` widened to
    /// `u128` so full-width integer ranges work.
    pub fn below_u128(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        if span <= u128::from(u64::MAX) {
            u128::from(self.next_u64()) % span
        } else {
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            wide % span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn named_streams_are_deterministic_and_distinct() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = TestRng::from_name("unit");
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
