//! The [`Strategy`] trait and the built-in combinators: integer and float
//! ranges, tuples, and [`Strategy::prop_map`].

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Always generates a clone of one value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u128::from(self.end) - u128::from(self.start);
                self.start + rng.below_u128(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = u128::from(hi) - u128::from(lo) + 1;
                lo + rng.below_u128(span) as $t
            }
        }
    )*};
}

unsigned_range_strategy!(u8, u16, u32, u64);

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end - self.start) as u128;
        self.start + rng.below_u128(span) as usize
    }
}

impl Strategy for RangeInclusive<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let span = (hi - lo) as u128 + 1;
        lo + rng.below_u128(span) as usize
    }
}

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (i128::from(self.end) - i128::from(self.start)) as u128;
                (i128::from(self.start) + rng.below_u128(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (i128::from(hi) - i128::from(lo)) as u128 + 1;
                (i128::from(lo) + rng.below_u128(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty : $conv:expr),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit: $t = $conv(rng.unit_f64());
                self.start + unit * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let unit: $t = $conv(rng.unit_f64());
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32: (|u| u as f32), f64: std::convert::identity);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            assert!((3u64..10).contains(&(3u64..10).generate(&mut r)));
            assert!((0usize..=4).contains(&(0usize..=4).generate(&mut r)));
            assert!((-5i64..5).contains(&(-5i64..5).generate(&mut r)));
            let f = (0.25f64..0.75).generate(&mut r);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_width_inclusive_range_works() {
        let mut r = rng();
        for _ in 0..64 {
            let _ = (1u64..=u64::MAX).generate(&mut r);
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut r = rng();
        let strat = ((0u64..10), (0u64..10)).prop_map(|(a, b)| a + b);
        for _ in 0..200 {
            assert!(strat.generate(&mut r) < 19);
        }
    }
}
