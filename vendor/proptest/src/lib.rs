//! Minimal local shim for `proptest`.
//!
//! Supports the subset of the real crate this workspace's property tests
//! use: the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! `prop_assert*!` / `prop_assume!`, [`arbitrary::any`], integer and float
//! range strategies, tuple strategies, `prop::collection::vec`, and
//! [`strategy::Strategy::prop_map`].
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case panics immediately with whatever the
//!   assertion message carries;
//! * cases are generated from a fixed per-test seed (hash of the test's
//!   module path and name), so runs are deterministic;
//! * `prop_assert*!` is plain `assert*!` (panic instead of `Err`), which is
//!   equivalent under this runner.
//!
//! See `vendor/README.md` for the vendoring rationale.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(..)` resolves as it does with
/// the real crate's prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property; failure panics with the condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Skips the current generated case when its inputs don't satisfy a
/// precondition (the surrounding case loop moves on to the next case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body for `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(config = ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}
