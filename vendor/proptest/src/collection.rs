//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for [`vec()`]: a count, `lo..hi` or `lo..=hi`.
pub trait SizeRange {
    /// Inclusive `(min, max)` length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty vec size range");
        (*self.start(), *self.end())
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max_len - self.min_len) as u128 + 1;
        let len = self.min_len + rng.below_u128(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (min_len, max_len) = size.bounds();
    VecStrategy {
        element,
        min_len,
        max_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_respects_length_bounds() {
        let mut rng = TestRng::from_name("vec");
        let strat = vec(any::<u32>(), 2..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = vec(0u8..10, 3usize);
        assert_eq!(exact.generate(&mut rng).len(), 3);
    }
}
