//! `any::<T>()` — the "whole domain of `T`" strategy.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types whose full domain can be sampled uniformly.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T`, e.g. `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::from_name("any");
        let strat = any::<u64>();
        let a = strat.generate(&mut rng);
        let b = strat.generate(&mut rng);
        assert_ne!(a, b);
    }
}
