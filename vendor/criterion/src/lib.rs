//! Minimal local shim for `criterion`.
//!
//! Implements the subset the workspace's benches use: benchmark groups with
//! `warm_up_time` / `measurement_time` / `sample_size` / `throughput`
//! configuration, `bench_function` / `bench_with_input`, [`BenchmarkId`],
//! and a [`Bencher`] whose `iter` measures wall-clock time. Each benchmark
//! prints one line with the median time per iteration (and throughput when
//! configured) instead of the real crate's statistical report and HTML
//! output. See `vendor/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything acceptable as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_owned(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    median: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`: warms up, then collects timed samples and records
    /// the median time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, which doubles as the per-iteration time estimate.
        let started = Instant::now();
        black_box(routine());
        let mut warm_iters: u32 = 1;
        while started.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = (started.elapsed() / warm_iters).max(Duration::from_nanos(1));

        // Pick iterations per sample so all samples fit the measurement
        // budget, then take the median over samples.
        let samples = self.sample_size.max(1) as u32;
        let budget = self.measurement_time / samples;
        let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, u128::from(u32::MAX)) as u32;
        let mut observed: Vec<Duration> = Vec::with_capacity(samples as usize);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            observed.push(t.elapsed() / iters);
        }
        observed.sort_unstable();
        self.median = Some(observed[observed.len() / 2]);
    }

    /// Measures `routine` on inputs produced by `setup`, excluding the setup
    /// cost from the timing (the shim runs one input per batch regardless of
    /// the requested `BatchSize`; only the routine is inside the clock).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm-up (untimed setup, timed routine), which doubles as the
        // per-iteration time estimate.
        let mut timed = Duration::ZERO;
        let mut warm_iters: u32 = 0;
        let warm_started = Instant::now();
        while warm_iters == 0 || warm_started.elapsed() < self.warm_up_time {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            timed += t.elapsed();
            warm_iters += 1;
        }
        let per_iter = (timed / warm_iters).max(Duration::from_nanos(1));

        // Pick iterations per sample so the timed portions fit the
        // measurement budget, then take the median over samples.
        let samples = self.sample_size.max(1) as u32;
        let budget = self.measurement_time / samples;
        let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, u128::from(u32::MAX)) as u32;
        let mut observed: Vec<Duration> = Vec::with_capacity(samples as usize);
        for _ in 0..samples {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                total += t.elapsed();
            }
            observed.push(total / iters);
        }
        observed.sort_unstable();
        self.median = Some(observed[observed.len() / 2]);
    }
}

/// How inputs are batched between setup and routine.  The shim accepts the
/// real crate's variants for API compatibility but always times one input at
/// a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: the real crate batches many per measurement.
    SmallInput,
    /// Large inputs: the real crate batches few per measurement.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration for subsequent benchmarks.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the measurement budget for subsequent benchmarks.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Declares the units one iteration processes (throughput reporting).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        self.run(&id, |b| f(b));
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: &BenchmarkId, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            median: None,
        };
        f(&mut bencher);
        match bencher.median {
            Some(median) => {
                let rate = self.throughput.map(|t| {
                    let secs = median.as_secs_f64().max(f64::MIN_POSITIVE);
                    match t {
                        Throughput::Elements(n) => format!(", {:.3e} elem/s", n as f64 / secs),
                        Throughput::Bytes(n) => format!(", {:.3e} B/s", n as f64 / secs),
                    }
                });
                println!(
                    "bench: {}/{}: median {median:?}/iter{}",
                    self.name,
                    id.id,
                    rate.unwrap_or_default()
                );
            }
            None => println!("bench: {}/{}: no measurement taken", self.name, id.id),
        }
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    default_warm_up: Duration,
    default_measurement: Duration,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Much shorter than the real crate's 3 s / 5 s / 100 samples: the
        // shim's single-machine medians don't benefit from long runs.
        Criterion {
            default_warm_up: Duration::from_millis(200),
            default_measurement: Duration::from_millis(600),
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up_time: self.default_warm_up,
            measurement_time: self.default_measurement,
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            default_warm_up: Duration::from_micros(50),
            default_measurement: Duration::from_micros(200),
            default_sample_size: 3,
        };
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        let mut calls = 0u64;
        group.bench_function(BenchmarkId::new("count", 4), |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0, "the routine must actually run");
    }

    #[test]
    fn iter_batched_runs_setup_per_input_outside_the_clock() {
        let mut c = Criterion {
            default_warm_up: Duration::from_micros(50),
            default_measurement: Duration::from_micros(200),
            default_sample_size: 3,
        };
        let mut group = c.benchmark_group("shim-batched");
        let mut setups = 0u64;
        let mut calls = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8, 2, 3]
                },
                |input| {
                    calls += 1;
                    input.len()
                },
                BatchSize::LargeInput,
            )
        });
        group.finish();
        assert!(calls > 0, "the routine must actually run");
        assert_eq!(setups, calls, "every routine call gets a fresh input");
    }
}
